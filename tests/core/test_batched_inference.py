"""Batched ensemble inference must equal the per-member loop exactly.

``Ensemble.predict_proba_all`` evaluates every member over shared input
batches in one data pass; each member still sees exactly the same batch
boundaries and inference-mode forward as ``member.model.predict_proba``, so
the stacked tensor must be *bitwise* identical to the per-member sweep.
"""

import numpy as np
import pytest

from repro.arch import mlp, vgg
from repro.core import Ensemble, EnsembleMember
from repro.nn import Model
from repro.nn.layers.activations import softmax


def _trained_like_ensemble(specs, seed=0, dtype=None):
    members = [
        EnsembleMember(name=spec.name, model=Model.from_spec(spec, seed=seed + i, dtype=dtype))
        for i, spec in enumerate(specs)
    ]
    return Ensemble(members, num_classes=specs[0].num_classes)


def _per_member_loop(ensemble, x, batch_size):
    """The seed implementation: one independent sweep per member."""
    return np.stack(
        [member.model.predict_proba(x, batch_size=batch_size) for member in ensemble.members]
    )


@pytest.mark.parametrize("batch_size", [4, 7, 64])
def test_batched_equals_per_member_loop_exactly_mlp(batch_size):
    specs = [
        mlp(f"m{i}", input_features=12, hidden_units=[10 + 2 * i], num_classes=4)
        for i in range(3)
    ]
    ensemble = _trained_like_ensemble(specs)
    x = np.random.default_rng(0).normal(size=(19, 12))
    batched = ensemble.predict_proba_all(x, batch_size=batch_size)
    looped = _per_member_loop(ensemble, x, batch_size)
    assert batched.shape == (3, 19, 4)
    assert batched.dtype == looped.dtype  # np.stack's dtype, reproduced
    assert np.array_equal(batched, looped)


def test_batched_equals_per_member_loop_exactly_conv():
    specs = [vgg("V13", num_classes=3, input_shape=(3, 8, 8), width_scale=0.05)]
    specs.append(vgg("V16", num_classes=3, input_shape=(3, 8, 8), width_scale=0.05))
    ensemble = _trained_like_ensemble(specs)
    x = np.random.default_rng(1).normal(size=(10, 3, 8, 8))
    batched = ensemble.predict_proba_all(x, batch_size=4)
    looped = _per_member_loop(ensemble, x, batch_size=4)
    assert np.array_equal(batched, looped)


def test_batched_inference_with_mixed_member_dtypes():
    spec = mlp("m", input_features=6, hidden_units=[8], num_classes=3)
    members = [
        EnsembleMember(name="f32", model=Model.from_spec(spec, seed=0, dtype="float32")),
        EnsembleMember(name="f64", model=Model.from_spec(spec, seed=1, dtype="float64")),
    ]
    ensemble = Ensemble(members, num_classes=3)
    x = np.random.default_rng(2).normal(size=(9, 6))
    batched = ensemble.predict_proba_all(x, batch_size=4)
    looped = _per_member_loop(ensemble, x, batch_size=4)
    assert np.array_equal(batched, looped)


def test_inference_methods_consume_the_batched_tensor():
    """EA / Vote / SL / Oracle all give the same answers as under the seed
    per-member implementation (they share member_probabilities)."""
    specs = [
        mlp(f"m{i}", input_features=12, hidden_units=[12], num_classes=4) for i in range(3)
    ]
    ensemble = _trained_like_ensemble(specs)
    rng = np.random.default_rng(3)
    x = rng.normal(size=(21, 12))
    y = rng.integers(0, 4, size=21)
    probs = _per_member_loop(ensemble, x, 8)

    np.testing.assert_array_equal(
        ensemble.predict_proba(x, method="average", batch_size=8), probs.mean(axis=0)
    )
    ensemble.fit_super_learner(x, y, iterations=20, batch_size=8)
    sl = ensemble.predict_proba(x, method="super_learner", batch_size=8)
    weights = ensemble.super_learner_weights
    np.testing.assert_allclose(sl, np.tensordot(weights, probs, axes=(0, 0)), atol=1e-12)

    predictions = probs.argmax(axis=2)
    any_correct = (predictions == y[None, :]).any(axis=0)
    expected_oracle = 100.0 * (1.0 - float(any_correct.mean()))
    assert ensemble.oracle_error_rate(x, y, batch_size=8) == pytest.approx(expected_oracle)


def test_member_probabilities_is_alias():
    specs = [mlp("m0", input_features=6, hidden_units=[6], num_classes=3)]
    ensemble = _trained_like_ensemble(specs)
    x = np.random.default_rng(4).normal(size=(5, 6))
    np.testing.assert_array_equal(
        ensemble.member_probabilities(x, batch_size=2),
        ensemble.predict_proba_all(x, batch_size=2),
    )


def test_stub_models_without_forward_fall_back():
    class _Stub:
        def __init__(self, probs):
            self.probs = np.asarray(probs, dtype=np.float64)

        def predict_proba(self, x, batch_size=None):
            return self.probs

    probs = np.array([[0.2, 0.8], [0.6, 0.4], [0.5, 0.5]])
    ensemble = Ensemble([EnsembleMember(name="s", model=_Stub(probs))], num_classes=2)
    x = np.zeros((3, 4))
    np.testing.assert_array_equal(ensemble.predict_proba_all(x)[0], probs)


def test_softmax_applied_per_batch_matches_full_pass():
    """Row-wise softmax commutes with batching — the invariant the batched
    path relies on."""
    logits = np.random.default_rng(5).normal(size=(11, 4)).astype(np.float32)
    full = softmax(logits, axis=-1)
    parts = np.concatenate([softmax(logits[:5], axis=-1), softmax(logits[5:], axis=-1)])
    np.testing.assert_array_equal(full, parts)

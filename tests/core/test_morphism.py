"""Unit tests for the function-preserving transformations (Figure 3).

Every transformation is verified numerically: the transformed model must
compute exactly the same inference-mode function as the source model.
"""

import numpy as np
import pytest

from repro.arch import ArchitectureSpec, count_parameters, mlp
from repro.core import (
    deepen_conv_block,
    deepen_dense,
    deepen_residual_block,
    expand_conv_filter,
    transfer_matching_weights,
    widen_conv_layer,
    widen_dense_layer,
    widen_residual_block,
)
from repro.core.hatching import verify_function_preservation
from repro.nn import Model, Trainer, TrainingConfig, default_dtype


@pytest.fixture(autouse=True)
def _float64_compute():
    """Function preservation is an exact algebraic identity; verify it at
    float64 resolution rather than the float32 compute default."""
    with default_dtype("float64"):
        yield


def _trained_model(spec, dataset=None, seed=0):
    """A model with non-trivial weights (and, if a dataset is given, non-trivial
    BatchNorm running statistics from a brief training run)."""
    model = Model.from_spec(spec, seed=seed)
    if dataset is not None:
        config = TrainingConfig(max_epochs=1, batch_size=64, learning_rate=0.05)
        Trainer(config).fit(model, dataset.x_train, dataset.y_train, seed=seed)
    return model


def _inputs(spec, n=6, seed=0):
    return np.random.default_rng(seed).normal(size=(n, *spec.input_shape))


# ---------------------------------------------------------------------------
# transfer_matching_weights
# ---------------------------------------------------------------------------


def test_transfer_copies_identical_structures(conv_spec_small):
    source = Model.from_spec(conv_spec_small, seed=0)
    target = Model.from_spec(conv_spec_small, seed=9)
    skipped = transfer_matching_weights(source, target)
    assert skipped == []
    x = _inputs(conv_spec_small)
    np.testing.assert_allclose(source.predict_logits(x), target.predict_logits(x), atol=1e-12)


def test_transfer_reports_mismatched_layers(conv_spec_small):
    import dataclasses

    from repro.arch import ConvBlockSpec, ConvLayerSpec

    source = Model.from_spec(conv_spec_small, seed=0)
    wider_blocks = list(conv_spec_small.conv_blocks)
    wider_blocks[1] = ConvBlockSpec((ConvLayerSpec(3, 12),))
    wider = dataclasses.replace(conv_spec_small, conv_blocks=tuple(wider_blocks))
    target = Model.from_spec(wider, seed=1)
    skipped = transfer_matching_weights(source, target)
    assert any("conv.1.0" in name for name in skipped)


# ---------------------------------------------------------------------------
# Widening
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("block_idx,layer_idx", [(0, 0), (0, 1), (1, 0)])
def test_widen_conv_layer_preserves_function(conv_spec_small, tiny_image_dataset, block_idx, layer_idx):
    spec = conv_spec_small
    model = _trained_model(spec, seed=1)
    old_filters = spec.conv_blocks[block_idx].layers[layer_idx].filters
    widened = widen_conv_layer(model, block_idx, layer_idx, old_filters + 3, seed=7)
    verify_function_preservation(model, widened, num_samples=5, atol=1e-8)
    assert widened.spec.conv_blocks[block_idx].layers[layer_idx].filters == old_filters + 3


def test_widen_last_conv_layer_adjusts_classifier(conv_spec_small):
    model = _trained_model(conv_spec_small, seed=2)
    widened = widen_conv_layer(model, 1, 0, 11, seed=3)
    assert widened.classifier.in_features == 11
    verify_function_preservation(model, widened, num_samples=5, atol=1e-8)


def test_widen_conv_layer_with_batchnorm_statistics(tiny_image_dataset):
    """Widening must replicate BatchNorm running statistics, so a briefly
    trained model (with non-trivial statistics) is still preserved exactly."""
    spec = ArchitectureSpec.convolutional(
        "bn-net", tiny_image_dataset.input_shape, [["3:6", "3:6"], ["3:8"]], num_classes=10
    )
    model = _trained_model(spec, tiny_image_dataset, seed=3)
    widened = widen_conv_layer(model, 0, 0, 9, seed=5)
    verify_function_preservation(model, widened, num_samples=5, atol=1e-8)


def test_widen_conv_noise_breaks_symmetry_but_stays_close(conv_spec_small):
    model = _trained_model(conv_spec_small, seed=4)
    widened = widen_conv_layer(model, 0, 0, 8, seed=5, noise_std=1e-3)
    x = _inputs(conv_spec_small)
    deviation = np.max(np.abs(model.predict_logits(x) - widened.predict_logits(x)))
    assert 0 < deviation < 0.5


def test_widen_conv_to_same_width_is_identity_copy(conv_spec_small):
    model = _trained_model(conv_spec_small, seed=5)
    same = widen_conv_layer(model, 0, 0, conv_spec_small.conv_blocks[0].layers[0].filters)
    verify_function_preservation(model, same, num_samples=3, atol=1e-12)


def test_widen_conv_cannot_shrink(conv_spec_small):
    model = Model.from_spec(conv_spec_small, seed=0)
    with pytest.raises(ValueError, match="cannot widen"):
        widen_conv_layer(model, 0, 0, 1)


def test_widen_conv_rejects_residual_blocks(residual_spec_small):
    model = Model.from_spec(residual_spec_small, seed=0)
    with pytest.raises(ValueError, match="widen_residual_block"):
        widen_conv_layer(model, 0, 0, 10)


def test_widen_dense_layer_preserves_function(small_mlp_spec):
    model = _trained_model(small_mlp_spec, seed=6)
    widened = widen_dense_layer(model, 0, 24, seed=1)
    verify_function_preservation(model, widened, num_samples=6, atol=1e-9)
    assert widened.spec.hidden_widths == (24, 12)


def test_widen_last_dense_layer_adjusts_classifier(small_mlp_spec):
    model = _trained_model(small_mlp_spec, seed=7)
    widened = widen_dense_layer(model, 1, 20, seed=2)
    assert widened.classifier.in_features == 20
    verify_function_preservation(model, widened, num_samples=6, atol=1e-9)


def test_widen_dense_increases_parameter_count(small_mlp_spec):
    model = Model.from_spec(small_mlp_spec, seed=0)
    widened = widen_dense_layer(model, 0, 32, seed=0)
    assert widened.parameter_count() > model.parameter_count()
    assert widened.parameter_count() == count_parameters(widened.spec)


def test_widen_residual_block_preserves_function(residual_spec_small):
    model = _trained_model(residual_spec_small, seed=8)
    widened = widen_residual_block(model, 0, 7, seed=3)
    verify_function_preservation(model, widened, num_samples=4, atol=1e-8)
    assert all(layer.filters == 7 for layer in widened.spec.conv_blocks[0].layers)


def test_widen_last_residual_block_adjusts_classifier(residual_spec_small):
    model = _trained_model(residual_spec_small, seed=9)
    widened = widen_residual_block(model, 1, 9, seed=4)
    assert widened.classifier.in_features == 9
    verify_function_preservation(model, widened, num_samples=4, atol=1e-8)


def test_widen_residual_block_requires_residual(conv_spec_small):
    model = Model.from_spec(conv_spec_small, seed=0)
    with pytest.raises(ValueError, match="requires a residual block"):
        widen_residual_block(model, 0, 10)


# ---------------------------------------------------------------------------
# Deepening
# ---------------------------------------------------------------------------


def test_deepen_conv_block_preserves_function(conv_spec_small):
    model = _trained_model(conv_spec_small, seed=10)
    deeper = deepen_conv_block(model, 0, 2)
    verify_function_preservation(model, deeper, num_samples=5, atol=1e-8)
    assert deeper.spec.conv_blocks[0].depth == conv_spec_small.conv_blocks[0].depth + 2


def test_deepen_conv_block_with_custom_filter_size(conv_spec_small):
    model = _trained_model(conv_spec_small, seed=11)
    deeper = deepen_conv_block(model, 1, 1, filter_size=1)
    assert deeper.spec.conv_blocks[1].layers[-1].filter_size == 1
    verify_function_preservation(model, deeper, num_samples=5, atol=1e-8)


def test_deepen_conv_block_zero_layers_is_copy(conv_spec_small):
    model = _trained_model(conv_spec_small, seed=12)
    same = deepen_conv_block(model, 0, 0)
    verify_function_preservation(model, same, num_samples=3, atol=1e-12)


def test_deepen_residual_block_preserves_function(residual_spec_small):
    model = _trained_model(residual_spec_small, seed=13)
    deeper = deepen_residual_block(model, 0, 2)
    verify_function_preservation(model, deeper, num_samples=4, atol=1e-8)
    assert deeper.spec.conv_blocks[0].depth == residual_spec_small.conv_blocks[0].depth + 2


def test_deepen_residual_requires_residual_block(conv_spec_small):
    model = Model.from_spec(conv_spec_small, seed=0)
    with pytest.raises(ValueError, match="requires a residual block"):
        deepen_residual_block(model, 0, 1)


def test_deepen_dense_preserves_function(small_mlp_spec):
    model = _trained_model(small_mlp_spec, seed=14)
    deeper = deepen_dense(model, 2)
    verify_function_preservation(model, deeper, num_samples=6, atol=1e-9)
    assert len(deeper.spec.dense_layers) == len(small_mlp_spec.dense_layers) + 2


def test_deepen_dense_on_conv_model_uses_channel_width(conv_spec_small):
    model = _trained_model(conv_spec_small, seed=15)
    deeper = deepen_dense(model, 1)
    assert deeper.spec.dense_layers[-1].units == conv_spec_small.conv_blocks[-1].layers[-1].filters
    verify_function_preservation(model, deeper, num_samples=4, atol=1e-8)


def test_deepening_is_composable_with_widening(conv_spec_small):
    model = _trained_model(conv_spec_small, seed=16)
    transformed = deepen_conv_block(model, 0, 1)
    transformed = widen_conv_layer(transformed, 0, 2, 9, seed=1)
    transformed = widen_conv_layer(transformed, 1, 0, 8, seed=2)
    verify_function_preservation(model, transformed, num_samples=4, atol=1e-8)


# ---------------------------------------------------------------------------
# Filter growth
# ---------------------------------------------------------------------------


def test_expand_filter_preserves_function(conv_spec_small):
    model = _trained_model(conv_spec_small, seed=17)
    expanded = expand_conv_filter(model, 0, 0, 5)
    verify_function_preservation(model, expanded, num_samples=5, atol=1e-8)
    assert expanded.spec.conv_blocks[0].layers[0].filter_size == 5


def test_expand_filter_on_residual_unit(residual_spec_small):
    model = _trained_model(residual_spec_small, seed=18)
    expanded = expand_conv_filter(model, 0, 0, 5)
    verify_function_preservation(model, expanded, num_samples=4, atol=1e-8)


def test_expand_filter_to_same_size_is_copy(conv_spec_small):
    model = _trained_model(conv_spec_small, seed=19)
    same = expand_conv_filter(model, 0, 0, 3)
    verify_function_preservation(model, same, num_samples=3, atol=1e-12)


def test_expand_filter_cannot_shrink(conv_spec_small):
    model = Model.from_spec(conv_spec_small, seed=0)
    with pytest.raises(ValueError):
        expand_conv_filter(model, 0, 0, 1)


def test_expanded_kernel_is_zero_padded(conv_spec_small):
    model = Model.from_spec(conv_spec_small, seed=0)
    expanded = expand_conv_filter(model, 0, 0, 7)
    kernel = expanded.conv_blocks[0].units[0].conv.params["W"]
    assert kernel.shape[-2:] == (7, 7)
    np.testing.assert_array_equal(kernel[:, :, 0, :], 0.0)
    np.testing.assert_array_equal(kernel[:, :, :, 0], 0.0)
    original = model.conv_blocks[0].units[0].conv.params["W"]
    np.testing.assert_array_equal(kernel[:, :, 2:5, 2:5], original)


# ---------------------------------------------------------------------------
# Source model is never mutated
# ---------------------------------------------------------------------------


def test_transformations_do_not_mutate_source(conv_spec_small):
    model = _trained_model(conv_spec_small, seed=20)
    x = _inputs(conv_spec_small)
    before = model.predict_logits(x)
    widen_conv_layer(model, 0, 0, 10, seed=1)
    deepen_conv_block(model, 1, 1)
    expand_conv_filter(model, 0, 1, 5)
    np.testing.assert_array_equal(model.predict_logits(x), before)
    assert model.spec == conv_spec_small

"""Layout-level ArtifactStore tests: resolution order, in-place migration,
torn ``CURRENT`` writes, promotion bookkeeping.

These work on stub artifacts (a ``manifest.json`` with the fields the store
reads, no weights), so they exercise every directory-shape branch without
training anything; loading semantics against real artifacts live in
``tests/api/test_store_backcompat.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.core.artifact_store import (
    ArtifactStore,
    CURRENT_NAME,
    LINEAGE_NAME,
    LINEAGE_SCHEMA,
    format_generation,
    parse_generation,
    resolve_artifact,
)


def make_stub_artifact(path, members=None):
    """A directory shaped like a saved ensemble artifact (manifest + members)."""
    path.mkdir(parents=True, exist_ok=True)
    members = members if members is not None else [
        {"name": "m0", "source": "hatched"},
        {"name": "m1", "source": "scratch"},
    ]
    (path / "manifest.json").write_text(
        json.dumps({"members": members, "created_unix": 1.0}), encoding="utf-8"
    )
    members_dir = path / "members"
    members_dir.mkdir(exist_ok=True)
    (members_dir / "m0.npz").write_bytes(b"weights")
    return path


def make_stub_store(root, generations=(0,), current=0):
    root.mkdir(parents=True, exist_ok=True)
    for generation in generations:
        make_stub_artifact(root / format_generation(generation))
    (root / CURRENT_NAME).write_text(format_generation(current) + "\n")
    return ArtifactStore(root)


def test_format_parse_roundtrip():
    assert format_generation(0) == "gen-0000"
    assert format_generation(12) == "gen-0012"
    assert parse_generation("gen-0012") == 12
    assert parse_generation("gen-123") is None  # needs >= 4 digits
    assert parse_generation("generation-1") is None
    assert parse_generation("members") is None
    with pytest.raises(ValueError):
        format_generation(-1)


def test_resolve_bare_directory_is_generation_zero(tmp_path):
    bare = make_stub_artifact(tmp_path / "artifact")
    resolved = resolve_artifact(bare)
    assert resolved.path == bare
    assert resolved.generation == 0
    assert resolved.store is None


def test_resolve_bare_directory_rejects_other_generations(tmp_path):
    bare = make_stub_artifact(tmp_path / "artifact")
    assert resolve_artifact(bare, generation=0).generation == 0
    with pytest.raises(ValueError, match="implicit generation 0"):
        resolve_artifact(bare, generation=3)


def test_resolve_store_root_follows_current(tmp_path):
    store = make_stub_store(tmp_path / "store", generations=(0, 1), current=1)
    resolved = resolve_artifact(store.root)
    assert resolved.generation == 1
    assert resolved.path == store.generation_path(1)
    assert resolved.store is not None
    # Explicit generation overrides the pointer.
    pinned = resolve_artifact(store.root, generation=0)
    assert pinned.generation == 0
    assert pinned.path == store.generation_path(0)


def test_resolve_generation_directory_is_pinned(tmp_path):
    store = make_stub_store(tmp_path / "store", generations=(0, 1), current=1)
    resolved = resolve_artifact(store.generation_path(0))
    assert resolved.generation == 0
    assert resolved.store is not None
    with pytest.raises(ValueError, match="ask the store root"):
        resolve_artifact(store.generation_path(0), generation=1)


def test_resolve_missing_generation_refused(tmp_path):
    store = make_stub_store(tmp_path / "store", generations=(0,), current=0)
    with pytest.raises(FileNotFoundError, match="no complete generation"):
        resolve_artifact(store.root, generation=7)


def test_resolve_nonsense_path_refused(tmp_path):
    empty = tmp_path / "nothing"
    empty.mkdir()
    with pytest.raises(FileNotFoundError, match="not an ensemble artifact"):
        resolve_artifact(empty)


def test_open_migrates_bare_directory_in_place(tmp_path):
    bare = make_stub_artifact(tmp_path / "artifact")
    store = ArtifactStore.open(bare)
    gen0 = store.generation_path(0)
    assert (gen0 / "manifest.json").is_file()
    assert (gen0 / "members" / "m0.npz").read_bytes() == b"weights"
    assert not (bare / "manifest.json").exists()  # moved, not copied
    assert store.current_generation() == 0
    lineage = store.lineage(0)
    assert lineage["schema"] == LINEAGE_SCHEMA
    assert lineage["parent_generation"] is None
    assert lineage["promotion"]["status"] == "promoted"
    origins = {row["name"]: row["origin"] for row in lineage["members"]}
    assert origins == {"m0": "hatched", "m1": "initial"}
    # Idempotent: opening a store is a no-op.
    again = ArtifactStore.open(bare)
    assert again.current_generation() == 0


def test_open_resumes_interrupted_migration(tmp_path):
    # Simulate a crash after the manifest moved but before CURRENT (the
    # commit point): gen-0000 exists, the root has neither manifest nor
    # pointer.  resolve refuses it with a hint; open finishes the job.
    bare = make_stub_artifact(tmp_path / "artifact")
    gen0 = bare / format_generation(0)
    gen0.mkdir()
    (bare / "manifest.json").rename(gen0 / "manifest.json")
    (bare / "members").rename(gen0 / "members")
    with pytest.raises(FileNotFoundError, match="no CURRENT pointer"):
        resolve_artifact(bare)
    store = ArtifactStore.open(bare)
    assert store.current_generation() == 0
    assert resolve_artifact(bare).generation == 0


def test_torn_current_write_resolves_old_generation(tmp_path):
    """A crash mid-promotion leaves the temp file beside the intact old
    pointer; resolution must keep answering the old generation."""
    store = make_stub_store(tmp_path / "store", generations=(0, 1), current=0)
    # The atomic writer's temp-file naming: <target>.tmp.<pid>.
    (store.root / f"{CURRENT_NAME}.tmp.12345").write_text(
        format_generation(1) + "\n"
    )
    resolved = resolve_artifact(store.root)
    assert resolved.generation == 0
    assert store.current_generation() == 0


def test_corrupt_current_pointer_is_an_error(tmp_path):
    store = make_stub_store(tmp_path / "store", generations=(0,), current=0)
    (store.root / CURRENT_NAME).write_text("garbage\n")
    with pytest.raises(ValueError, match="corrupt CURRENT pointer"):
        resolve_artifact(store.root)


def test_generations_lists_only_complete_ones(tmp_path):
    store = make_stub_store(tmp_path / "store", generations=(0, 2), current=0)
    # An empty gen dir (crashed save) is not a generation.
    store.generation_path(1).mkdir()
    assert store.generations() == [0, 2]


def test_promote_requires_complete_generation(tmp_path):
    store = make_stub_store(tmp_path / "store", generations=(0,), current=0)
    with pytest.raises(FileNotFoundError, match="incomplete generation"):
        store.promote(5)


def test_promote_and_reject_update_pointer_and_lineage(tmp_path):
    store = make_stub_store(tmp_path / "store", generations=(0, 1, 2), current=0)
    store.promote(1)
    assert store.current_generation() == 1
    assert store.lineage(1)["promotion"]["status"] == "promoted"
    store.reject(2, reason="gate failed")
    assert store.current_generation() == 1  # pointer untouched
    promotion = store.lineage(2)["promotion"]
    assert promotion["status"] == "rejected"
    assert promotion["reason"] == "gate failed"
    # describe() reports the full ledger.
    description = store.describe()
    assert description["current_generation"] == 1
    by_generation = {row["generation"]: row for row in description["generations"]}
    assert by_generation[1]["current"] is True
    assert by_generation[2]["promotion"] == "rejected"


def test_lineage_file_name(tmp_path):
    store = make_stub_store(tmp_path / "store", generations=(0,), current=0)
    store._update_promotion(0, {"status": "promoted"})
    assert (store.generation_path(0) / LINEAGE_NAME).is_file()

"""Unit tests for MotherNet construction (§2.1)."""

import pytest

from repro.arch import (
    ArchitectureSpec,
    IncompatibleArchitectureError,
    count_parameters,
    is_hatchable,
    mlp,
    small_vgg_ensemble,
    vgg,
)
from repro.core import construct_mothernet


def _conv(name, blocks, residual=False):
    return ArchitectureSpec.convolutional(
        name, (3, 8, 8), blocks, num_classes=10, residual=residual
    )


# ---------------------------------------------------------------------------
# Fully-connected construction
# ---------------------------------------------------------------------------


def test_dense_mothernet_uses_shallowest_depth():
    members = [mlp("a", 16, [32, 32, 32], 4), mlp("b", 16, [64, 64], 4)]
    mothernet = construct_mothernet(members)
    assert len(mothernet.dense_layers) == 2


def test_dense_mothernet_takes_minimum_width_per_position():
    members = [mlp("a", 16, [32, 64], 4), mlp("b", 16, [48, 16], 4)]
    mothernet = construct_mothernet(members)
    assert mothernet.hidden_widths == (32, 16)


def test_paper_figure2_example_three_and_four_layer_networks():
    """Figure 2a: two three-layer networks and one four-layer network give a
    three-layer MotherNet built from the smallest layer at each position."""
    members = [
        mlp("n0", 16, [20, 30, 20], 4),
        mlp("n1", 16, [30, 10, 30], 4),
        mlp("n2", 16, [25, 25, 25, 25], 4),
    ]
    mothernet = construct_mothernet(members)
    assert mothernet.hidden_widths == (20, 10, 20)


def test_mothernet_is_single_member_for_singleton_ensemble():
    member = mlp("solo", 16, [32, 16], 4)
    mothernet = construct_mothernet([member])
    assert mothernet.hidden_widths == member.hidden_widths


# ---------------------------------------------------------------------------
# Convolutional construction (block-by-block)
# ---------------------------------------------------------------------------


def test_conv_mothernet_block_depths_are_minimum_per_block():
    members = [
        _conv("a", [["3:8", "3:8"], ["3:16", "3:16", "3:16"]]),
        _conv("b", [["3:8", "3:8", "3:8"], ["3:16", "3:16"]]),
    ]
    mothernet = construct_mothernet(members)
    assert [block.depth for block in mothernet.conv_blocks] == [2, 2]


def test_conv_mothernet_takes_min_filters_and_min_size_per_position():
    members = [
        _conv("a", [["5:8", "3:16"]]),
        _conv("b", [["3:12", "5:12"]]),
    ]
    mothernet = construct_mothernet(members)
    layers = mothernet.conv_blocks[0].layers
    assert (layers[0].filter_size, layers[0].filters) == (3, 8)
    assert (layers[1].filter_size, layers[1].filters) == (3, 12)


def test_paper_figure4_example():
    """The three-network example of Figure 4 (block structure only)."""
    net1 = _conv("net1", [["3:64", "3:64"], ["3:32", "1:64"], ["3:64", "3:64", "3:64"]])
    net2 = _conv("net2", [["3:64"], ["3:64", "5:64"], ["3:64", "3:72"]])
    net3 = _conv("net3", [["3:64", "5:64"], ["1:64", "3:32"], ["3:64", "3:64"]])
    mothernet = construct_mothernet([net1, net2, net3])
    blocks = [
        [layer.notation() for layer in block.layers] for block in mothernet.conv_blocks
    ]
    assert blocks == [["3:64"], ["1:32", "1:32"], ["3:64", "3:64"]]


def test_conv_mothernet_smaller_or_equal_to_smallest_member():
    members = small_vgg_ensemble(input_shape=(3, 8, 8), width_scale=0.1)
    mothernet = construct_mothernet(members)
    smallest = min(count_parameters(member) for member in members)
    assert count_parameters(mothernet) <= smallest


def test_conv_mothernet_is_hatchable_into_every_member():
    members = small_vgg_ensemble(input_shape=(3, 8, 8), width_scale=0.1)
    mothernet = construct_mothernet(members)
    assert all(is_hatchable(mothernet, member) for member in members)


def test_mothernet_of_full_scale_table1_ensemble():
    members = small_vgg_ensemble()
    mothernet = construct_mothernet(members)
    # Block depths are the per-block minima of Table 1: [2, 2, 2, 2, 2].
    assert [block.depth for block in mothernet.conv_blocks] == [2, 2, 2, 2, 2]
    # Block 0 width is min(64, 128) = 64; block 2 width is min(256, 128) = 128.
    assert mothernet.conv_blocks[0].layers[0].filters == 64
    assert mothernet.conv_blocks[2].layers[0].filters == 128
    assert all(is_hatchable(mothernet, member) for member in members)


def test_residual_mothernet_keeps_uniform_block_width():
    members = [
        _conv("a", [["3:8", "3:8"], ["3:16", "3:16"]], residual=True),
        _conv("b", [["3:12", "3:12", "3:12"], ["3:24", "3:24"]], residual=True),
    ]
    mothernet = construct_mothernet(members)
    for block in mothernet.conv_blocks:
        assert block.residual
        assert len({layer.filters for layer in block.layers}) == 1
    assert mothernet.conv_blocks[0].layers[0].filters == 8
    assert mothernet.conv_blocks[1].layers[0].filters == 16


def test_mothernet_preserves_input_output_structure():
    members = small_vgg_ensemble(num_classes=100, input_shape=(3, 16, 16), width_scale=0.1)
    mothernet = construct_mothernet(members, name="mn")
    assert mothernet.name == "mn"
    assert mothernet.input_shape == (3, 16, 16)
    assert mothernet.num_classes == 100


def test_mothernet_includes_dense_head_only_if_all_members_have_one():
    with_head = ArchitectureSpec.convolutional(
        "a", (3, 8, 8), [["3:8"]], num_classes=10, dense_layers=[32]
    )
    without_head = _conv("b", [["3:8"]])
    assert construct_mothernet([with_head, without_head]).dense_layers == ()
    both = [
        ArchitectureSpec.convolutional(
            "a", (3, 8, 8), [["3:8"]], num_classes=10, dense_layers=[32]
        ),
        ArchitectureSpec.convolutional(
            "b", (3, 8, 8), [["3:8"]], num_classes=10, dense_layers=[16, 16]
        ),
    ]
    assert construct_mothernet(both).hidden_widths == (16,)


def test_incompatible_members_raise():
    with pytest.raises(IncompatibleArchitectureError):
        construct_mothernet([mlp("a", 16, [8], 4), mlp("b", 16, [8], 6)])


def test_empty_ensemble_raises():
    with pytest.raises(IncompatibleArchitectureError):
        construct_mothernet([])

"""Unit tests for the training-cost ledger and the analytical cost model."""

import pytest

from repro.arch import count_parameters, mlp, vgg
from repro.core import AnalyticalCostModel, CostLedger, speedup


def _ledger_with_records():
    ledger = CostLedger(approach="mothernets")
    ledger.add("mothernet-0", "mothernet", epochs=10, wall_clock_seconds=100.0,
               parameters=1000, samples_per_epoch=500)
    ledger.add("member-a", "member", epochs=2, wall_clock_seconds=20.0,
               parameters=1200, samples_per_epoch=500)
    ledger.add("member-b", "member", epochs=3, wall_clock_seconds=30.0,
               parameters=1500, samples_per_epoch=500)
    return ledger


def test_ledger_totals():
    ledger = _ledger_with_records()
    assert ledger.total_seconds == pytest.approx(150.0)
    assert ledger.total_epochs == 15
    assert ledger.total_work_units == pytest.approx(
        1000 * 500 * 10 + 1200 * 500 * 2 + 1500 * 500 * 3
    )


def test_ledger_seconds_by_phase_and_network():
    ledger = _ledger_with_records()
    assert ledger.seconds_by_phase() == {"mothernet": 100.0, "member": 50.0}
    assert ledger.seconds_by_network()["member-a"] == 20.0


def test_cumulative_member_seconds_counts_shared_cost_once():
    ledger = _ledger_with_records()
    assert ledger.cumulative_member_seconds() == [120.0, 150.0]


def test_cumulative_series_for_scratch_baseline_has_no_offset():
    ledger = CostLedger(approach="full_data")
    ledger.add("a", "scratch", 5, 50.0, 100, 100)
    ledger.add("b", "scratch", 5, 70.0, 120, 100)
    assert ledger.cumulative_member_seconds() == [50.0, 120.0]


def test_record_work_units():
    ledger = _ledger_with_records()
    assert ledger.records[0].work_units == 1000 * 500 * 10


def test_cost_model_training_seconds_scale_with_work():
    model = AnalyticalCostModel(seconds_per_unit=1e-6)
    small, large = mlp("s", 32, [16], 4), mlp("l", 32, [64, 64], 4)
    assert model.training_seconds(large, 10, 1000) > model.training_seconds(small, 10, 1000)
    assert model.training_seconds(small, 20, 1000) == pytest.approx(
        2 * model.training_seconds(small, 10, 1000)
    )


def test_cost_model_rejects_invalid_inputs():
    with pytest.raises(ValueError):
        AnalyticalCostModel(seconds_per_unit=0.0)
    model = AnalyticalCostModel(1e-9)
    with pytest.raises(ValueError):
        model.training_seconds(mlp("m", 8, [4], 2), -1, 10)


def test_calibration_reproduces_ledger_total():
    ledger = _ledger_with_records()
    model = AnalyticalCostModel.calibrate(ledger)
    reproduced = model.seconds_per_unit * ledger.total_work_units
    assert reproduced == pytest.approx(ledger.total_seconds)


def test_calibration_requires_nonempty_ledger():
    with pytest.raises(ValueError):
        AnalyticalCostModel.calibrate(CostLedger(approach="x"))


def test_ensemble_projection_mothernets_beats_full_data_at_scale():
    """The projected cost of the MotherNets protocol (one shared full run plus
    short member fine-tuning) must be far below full-data training as the
    ensemble grows — the shape of Figures 6b-9b."""
    cost = AnalyticalCostModel(seconds_per_unit=1e-9)
    members = [vgg("V16", width_scale=0.25).with_name(f"m{i}") for i in range(50)]
    mothernet = vgg("V16", width_scale=0.25).with_name("mn")
    full_epochs, member_epochs = 60, 6
    samples = 50_000
    fd = cost.ensemble_training_seconds(members, full_epochs, samples)
    mn = cost.ensemble_training_seconds(
        members, member_epochs, samples, mothernet_specs=[mothernet], mothernet_epochs=full_epochs
    )
    assert speedup(fd, mn) > 4.0


def test_cumulative_series_is_monotone_and_matches_total():
    cost = AnalyticalCostModel(seconds_per_unit=1e-9)
    members = [mlp(f"m{i}", 32, [64], 10) for i in range(10)]
    series = cost.cumulative_series(members, epochs_per_member=5, samples=1000)
    assert len(series) == 10
    assert all(b > a for a, b in zip(series, series[1:]))
    assert series[-1] == pytest.approx(cost.ensemble_training_seconds(members, 5, 1000))


def test_speedup_validation():
    assert speedup(100.0, 25.0) == pytest.approx(4.0)
    with pytest.raises(ValueError):
        speedup(10.0, 0.0)


def test_projection_uses_spec_parameter_counts():
    cost = AnalyticalCostModel(seconds_per_unit=1.0)
    spec = mlp("m", 16, [8], 4)
    assert cost.training_seconds(spec, 1, 1) == pytest.approx(count_parameters(spec))

"""Shared fixtures for the parallel-engine tests.

One tiny tabular MLP experiment is trained serially once per session; the
individual tests retrain it with ``workers > 1`` (equivalence), save it as an
artifact (serving pool / CLI), or both.
"""

from __future__ import annotations

import os
import sys

import pytest

from repro.api import run_experiment, save_ensemble_run


def _shm_entries() -> set:
    if not sys.platform.startswith("linux"):
        return set()
    return {name for name in os.listdir("/dev/shm") if name.startswith("repro-shm")}


@pytest.fixture
def shm_sweep():
    """Assert the test leaves no *new* ``repro-shm`` residue in ``/dev/shm``.

    Snapshot-based rather than demanding an empty directory, because
    long-lived module fixtures (e.g. a shared serving pool on the shm
    transport) legitimately hold arena segments for their whole lifetime;
    only segments the test itself created and failed to clean up count as
    leaks.
    """
    before = _shm_entries()
    yield
    leaked = _shm_entries() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def parallel_experiment_dict(**overrides):
    """A small declarative experiment with enough members to parallelise."""
    base = {
        "name": "parallel-tiny",
        "dataset": {
            "name": "tabular",
            "train_samples": 256,
            "test_samples": 64,
            "num_classes": 4,
            "num_features": 12,
            "class_separation": 2.0,
            "seed": 5,
        },
        "members": {
            "family": "mlp",
            "count": 4,
            "input_features": 12,
            "num_classes": 4,
            "base_width": 10,
            "seed": 1,
        },
        "approach": "mothernets",
        "training": {"max_epochs": 3, "batch_size": 64, "learning_rate": 0.1},
        "trainer": {"tau": 0.3},
        "seed": 0,
        "super_learner": True,
    }
    for key, value in overrides.items():
        base[key] = value
    return base


@pytest.fixture(scope="session")
def experiment_dict():
    return parallel_experiment_dict


@pytest.fixture(scope="session")
def serial_result():
    """The reference run, trained on the plain serial path (workers=1)."""
    return run_experiment(parallel_experiment_dict())


@pytest.fixture(scope="session")
def saved_artifact(serial_result, tmp_path_factory):
    """The serial run persisted as an artifact directory (for serving tests)."""
    path = tmp_path_factory.mktemp("parallel-artifact") / "artifact"
    save_ensemble_run(serial_result.run, path)
    return path

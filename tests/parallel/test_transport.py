"""Serving data plane: shm vs pickle transport equivalence and mechanics.

The contract (ISSUE 8): ``transport="shm"`` answers are **bitwise identical**
to ``transport="pickle"`` and to the single-process ``EnsemblePredictor`` —
including requests larger than ``max_batch`` (multi-slot coalescing) and
concurrent client threads — while moving orders of magnitude fewer bytes
through the worker queues.  The shm path hands out zero-copy views of the
arena; the pickle path's behaviour (plain owned arrays) is unchanged.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.api import EnsemblePredictor
from repro.obs.metrics import get_registry
from repro.parallel import PoolPredictor
from repro.parallel.shm_transport import ShmArena, _RegionAllocator


def _counter(name: str, *labels: str) -> float:
    metric = get_registry().get(name)
    if metric is None:
        return 0.0
    if labels:
        metric = metric.labels(*labels)
    return metric.value


@pytest.fixture(scope="module")
def reference(saved_artifact):
    return EnsemblePredictor.load(saved_artifact)


@pytest.mark.parametrize("transport", ["shm", "pickle"])
def test_transports_match_single_process_bitwise(
    saved_artifact, reference, serial_result, transport, shm_sweep
):
    x = serial_result.dataset.x_test
    with PoolPredictor(
        saved_artifact, workers=2, transport=transport, max_wait_ms=1.0
    ) as pool:
        np.testing.assert_array_equal(
            pool.predict_proba(x), reference.predict_proba(x)
        )
        np.testing.assert_array_equal(pool.predict(x), reference.predict(x))
        for method in ("average", "vote", "super_learner"):
            np.testing.assert_array_equal(
                pool.predict_proba(x[:9], method=method),
                reference.predict_proba(x[:9], method=method),
            )


def test_shm_matches_pickle_bitwise(saved_artifact, serial_result, shm_sweep):
    x = serial_result.dataset.x_test
    with PoolPredictor(saved_artifact, workers=1, transport="pickle") as pool:
        via_pickle = pool.predict_proba(x)
    with PoolPredictor(saved_artifact, workers=1, transport="shm") as pool:
        via_shm = pool.predict_proba(x)
    np.testing.assert_array_equal(via_shm, via_pickle)
    assert via_shm.dtype == via_pickle.dtype


def test_shm_handles_requests_larger_than_max_batch(
    saved_artifact, reference, serial_result, shm_sweep
):
    """A single request bigger than ``max_batch`` coalesces several slots'
    worth of contiguous arena bytes — still zero fallbacks, still bitwise."""
    fallbacks_before = _counter(
        "repro_serve_transport_fallbacks_total", "request_ring_full"
    ) + _counter("repro_serve_transport_fallbacks_total", "result_ring_full")
    x = serial_result.dataset.x_test  # 64 rows >> max_batch=8
    with PoolPredictor(
        saved_artifact, workers=1, transport="shm", max_batch=8, arena_slots=16
    ) as pool:
        np.testing.assert_array_equal(
            pool.predict_proba(x), reference.predict_proba(x)
        )
    fallbacks_after = _counter(
        "repro_serve_transport_fallbacks_total", "request_ring_full"
    ) + _counter("repro_serve_transport_fallbacks_total", "result_ring_full")
    assert fallbacks_after == fallbacks_before


def test_shm_oversized_request_falls_back_to_pickle(
    saved_artifact, reference, serial_result, shm_sweep
):
    """A request that cannot fit the whole arena degrades to the pickle
    encoding for that dispatch — transparently, counted, still bitwise."""
    x = serial_result.dataset.x_test  # 64 rows; arena sized for ~2
    with PoolPredictor(
        saved_artifact, workers=1, transport="shm", max_batch=2, arena_slots=1
    ) as pool:
        before = _counter(
            "repro_serve_transport_fallbacks_total", "request_ring_full"
        )
        np.testing.assert_array_equal(
            pool.predict_proba(x), reference.predict_proba(x)
        )
        after = _counter(
            "repro_serve_transport_fallbacks_total", "request_ring_full"
        )
        assert after >= before + 1


@pytest.mark.parametrize("transport", ["shm", "pickle"])
def test_transports_under_concurrent_clients(
    saved_artifact, reference, serial_result, transport, shm_sweep
):
    x = serial_result.dataset.x_test
    expected_all = reference.predict_proba(x)
    with PoolPredictor(
        saved_artifact, workers=2, transport=transport, max_wait_ms=1.0
    ) as pool:

        def call(i):
            start = i % 40
            size = 1 + (i % 7)
            batch = x[start : start + size]
            out = pool.predict_proba(batch)
            return np.array_equal(out, expected_all[start : start + batch.shape[0]])

        with ThreadPoolExecutor(max_workers=8) as clients:
            results = list(clients.map(call, range(64)))
    assert all(results)


def test_shm_results_are_views_pickle_results_own_their_data(
    saved_artifact, serial_result, shm_sweep
):
    """The small-fix satellite: shm results come back as zero-copy views of
    the arena (no re-pickle, no extra copy); the pickle path still returns
    plain owned arrays — its behaviour is unchanged."""
    x = serial_result.dataset.x_test[:4]
    with PoolPredictor(saved_artifact, workers=1, transport="shm") as pool:
        out = pool.predict_proba(x)
        assert out.base is not None  # a view of the arena's buffer
        stats = pool.info()["arenas"][0]
        assert stats["exported_result_views"] >= 1
        assert stats["result_used_bytes"] > 0
        # Dropping the view releases its region back to the arena.
        del out, stats
        deadline_stats = pool.info()["arenas"][0]
        assert deadline_stats["exported_result_views"] == 0
        assert deadline_stats["result_used_bytes"] == 0
    with PoolPredictor(saved_artifact, workers=1, transport="pickle") as pool:
        out = pool.predict_proba(x)
        assert out.base is None  # an ordinary owned array, as before
        out[...] = 0.0  # and safely mutable by the client


def test_transport_bytes_counters_populated(
    saved_artifact, serial_result, shm_sweep
):
    """Both directions of ``repro_serve_transport_bytes_total`` move, and the
    shm descriptors are far smaller than the pickle tensors for the same
    traffic (the benchmark guards the exact ratio at batch 4096)."""
    x = serial_result.dataset.x_test

    def deltas(transport):
        before = (
            _counter("repro_serve_transport_bytes_total", transport, "request"),
            _counter("repro_serve_transport_bytes_total", transport, "response"),
        )
        with PoolPredictor(saved_artifact, workers=1, transport=transport) as pool:
            pool.predict_proba(x)
        return (
            _counter("repro_serve_transport_bytes_total", transport, "request")
            - before[0],
            _counter("repro_serve_transport_bytes_total", transport, "response")
            - before[1],
        )

    shm_req, shm_res = deltas("shm")
    pickle_req, pickle_res = deltas("pickle")
    assert shm_req > 0 and shm_res > 0
    assert pickle_req >= x.nbytes
    assert pickle_req > shm_req
    assert pickle_res > shm_res


def test_info_reports_transport_and_arena_occupancy(saved_artifact, shm_sweep):
    with PoolPredictor(saved_artifact, workers=2, transport="shm") as pool:
        info = pool.info()
        assert info["transport"] == "shm"
        assert info["arena_slots"] == 4
        assert info["arena_bytes_per_worker"] > 0
        assert len(info["arenas"]) == 2
        for arena in info["arenas"]:
            assert arena["generation"] == 0
            assert arena["request_capacity_bytes"] > 0
            assert arena["inflight_dispatches"] == 0
    with PoolPredictor(saved_artifact, workers=1, transport="pickle") as pool:
        info = pool.info()
        assert info["transport"] == "pickle"
        assert info["arena_slots"] is None
        assert info["arena_bytes_per_worker"] is None
        assert info["arenas"] == [None]


def test_pool_rejects_bad_transport(saved_artifact):
    with pytest.raises(ValueError, match="transport"):
        PoolPredictor(saved_artifact, transport="carrier-pigeon")
    with pytest.raises(ValueError, match="arena_slots"):
        PoolPredictor(saved_artifact, transport="shm", arena_slots=0)


# --------------------------------------------------------------------------
# allocator / arena unit coverage (no worker processes)
# --------------------------------------------------------------------------


def test_region_allocator_first_fit_coalesce_and_stale_free():
    alloc = _RegionAllocator(base=0, capacity=256)
    a = alloc.alloc(64)
    b = alloc.alloc(64)
    c = alloc.alloc(64)
    assert (a, b, c) == (0, 64, 128)
    assert alloc.alloc(128) is None  # only 64 left
    assert alloc.free(b)
    assert alloc.free(a)
    # Freed neighbours coalesced: a 128-byte region fits again at the front.
    assert alloc.alloc(128) == 0
    assert not alloc.free(999)  # stale offsets are ignored, not fatal
    assert alloc.free(c)
    assert alloc.used_bytes == 128
    assert alloc.inflight_regions == 1


def test_region_allocator_exhaustion_and_recovery_under_interleaved_frees():
    """Exhaust the arena with interleaved alloc/free orders: alloc must
    return None (pickle fallback) exactly while nothing fits, and recover
    the moment enough contiguous space coalesces back."""
    alloc = _RegionAllocator(base=0, capacity=512)
    regions = [alloc.alloc(128) for _ in range(4)]
    assert regions == [0, 128, 256, 384]
    assert alloc.alloc(1) is None  # fully exhausted
    # Free the two interior regions in reverse order: 256 bytes free but the
    # hole is contiguous (128..384), so 256 fits and 384 does not.
    assert alloc.free(regions[2])
    assert alloc.free(regions[1])
    assert alloc.alloc(384) is None
    assert alloc.alloc(256) == 128
    assert alloc.alloc(1) is None  # exhausted again
    assert alloc.used_bytes == 512


def test_region_allocator_coalesces_out_of_order_releases():
    """Whatever order regions are released in — forward, backward, or
    inside-out — the free list must coalesce back to one full-capacity
    region that can satisfy a single maximal allocation."""
    import itertools

    for order in itertools.permutations(range(4)):
        alloc = _RegionAllocator(base=0, capacity=256)
        offsets = [alloc.alloc(64) for _ in range(4)]
        for index in order:
            assert alloc.free(offsets[index])
        assert alloc.inflight_regions == 0
        assert alloc.used_bytes == 0
        assert alloc.alloc(256) == 0, f"fragmented after free order {order}"


def test_region_allocator_nonzero_base_and_alignment_rounding():
    """Offsets honour the arena base and sub-alignment requests round up to
    the alignment quantum (so neighbouring regions never overlap)."""
    from repro.parallel.shm_transport import ALIGNMENT

    alloc = _RegionAllocator(base=1024, capacity=4 * ALIGNMENT)
    a = alloc.alloc(1)  # rounds up to one alignment quantum
    b = alloc.alloc(ALIGNMENT + 1)  # rounds up to two
    assert a == 1024
    assert b == 1024 + ALIGNMENT
    assert alloc.used_bytes == 3 * ALIGNMENT
    assert alloc.alloc(2 * ALIGNMENT) is None  # only one quantum left
    assert alloc.alloc(ALIGNMENT) == 1024 + 3 * ALIGNMENT
    assert alloc.free(b)
    assert alloc.alloc(2 * ALIGNMENT) == 1024 + ALIGNMENT


def test_region_allocator_double_free_is_ignored():
    alloc = _RegionAllocator(base=0, capacity=128)
    a = alloc.alloc(64)
    assert alloc.free(a)
    assert not alloc.free(a)  # second release of the same region: no-op
    # The double free must not have corrupted the free list.
    assert alloc.alloc(128) == 0
    assert alloc.used_bytes == 128


def test_arena_retire_unlinks_immediately_but_defers_close(shm_sweep):
    import os
    import sys

    arena = ShmArena(0, max_batch=4, feature_size=3, num_classes=2, slots=2)
    offset = arena.alloc_result(64)
    view = arena.take_result_view(offset, (2, 2), "float64")
    arena.retire()
    if sys.platform.startswith("linux"):
        # The name is gone from /dev/shm the moment retire() runs...
        assert arena.meta.name not in os.listdir("/dev/shm")
    # ...but the mapping stays usable while a client still holds a view.
    assert view.shape == (2, 2)
    del view
    # Allocations after retirement are refused (callers fall back to pickle).
    assert arena.alloc_request(16) is None
    assert arena.alloc_result(16) is None

"""Chaos tests: the training engine under injected crashes, hangs and errors.

The contract under test (ISSUE 6): a worker SIGKILLed or wedged mid-member is
evicted, respawned, and its task retried — and because every seed is derived
statelessly, the finished ensemble is *bitwise* identical to a run where
nothing failed.  A parent killed with ``kill -9`` resumes from the checkpoint
journal without retraining finished members.  Faults come from the
``REPRO_FAULTS`` registry (``repro.faults``), the same mechanism the CI chaos
job uses.
"""

from __future__ import annotations

import copy
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api import load_ensemble_run, run_experiment
from repro.obs.metrics import get_registry

# Member names produced by the conftest mlp family (count=4, seed=1).
MEMBERS = ["mlp-base", "mlp-var-001", "mlp-var-002", "mlp-var-003"]
# In the *mothernets* conftest experiment the first two members alias their
# cluster's MotherNet and train inline in the parent; the last two are
# worker tasks (the only place train faults can fire).
WORKER_TRAINED_MEMBER = "mlp-var-002"


def _counter(name: str, *labels: str) -> float:
    metric = get_registry().get(name)
    if metric is None:
        return 0.0
    if labels:
        metric = metric.labels(*labels)
    return metric.value


def _scratch_config(experiment_dict, **training_overrides):
    config = experiment_dict(approach="full-data")
    config.pop("trainer")
    config.pop("super_learner")
    config["training"] = dict(config["training"], **training_overrides)
    return config


def _assert_same_members(reference, candidate):
    assert [m.name for m in reference.ensemble.members] == [
        m.name for m in candidate.ensemble.members
    ]
    for ref, cand in zip(reference.ensemble.members, candidate.ensemble.members):
        ref_weights = ref.model.get_weights()
        cand_weights = cand.model.get_weights()
        assert ref_weights.keys() == cand_weights.keys()
        for layer in ref_weights:
            for key in ref_weights[layer]:
                np.testing.assert_array_equal(
                    cand_weights[layer][key],
                    ref_weights[layer][key],
                    err_msg=f"{ref.name}/{layer}/{key}",
                )


@pytest.fixture(scope="module")
def scratch_serial(experiment_dict):
    """Fault-free serial reference for the full-data (scratch) approach."""
    return run_experiment(_scratch_config(experiment_dict)).run


def test_sigkill_mid_member_retries_bitwise(experiment_dict, scratch_serial, monkeypatch):
    """A worker SIGKILLed mid-fit is evicted; the retried member is bitwise
    identical to the fault-free run (``attempt=0`` scopes the fault to the
    first attempt, so the retry survives)."""
    monkeypatch.setenv("REPRO_FAULTS", "train_crash:member=mlp-var-001:attempt=0")
    retries_before = _counter("repro_training_task_retries_total")
    evictions_before = _counter("repro_training_worker_evictions_total", "died")

    chaos = run_experiment(_scratch_config(experiment_dict, workers=2)).run

    _assert_same_members(scratch_serial, chaos)
    assert _counter("repro_training_task_retries_total") >= retries_before + 1
    assert _counter("repro_training_worker_evictions_total", "died") >= evictions_before + 1


def test_hang_past_deadline_evicts_and_retries_bitwise(
    experiment_dict, scratch_serial, monkeypatch
):
    """A worker wedged past ``task_timeout`` is SIGKILLed by the deadline
    check (its heartbeat thread keeps beating, so only the per-task deadline
    can catch it) and the member retrains bitwise."""
    monkeypatch.setenv(
        "REPRO_FAULTS", "train_hang:member=mlp-var-002:attempt=0:seconds=60"
    )
    retries_before = _counter("repro_training_task_retries_total")
    deadline_before = _counter("repro_training_worker_evictions_total", "deadline")

    chaos = run_experiment(
        _scratch_config(experiment_dict, workers=2, task_timeout=3.0)
    ).run

    _assert_same_members(scratch_serial, chaos)
    assert _counter("repro_training_task_retries_total") >= retries_before + 1
    assert (
        _counter("repro_training_worker_evictions_total", "deadline")
        >= deadline_before + 1
    )


def test_mothernets_chaos_crash_matches_serial(
    experiment_dict, serial_result, monkeypatch
):
    """The full MotherNets pipeline (cluster -> train -> hatch -> fine-tune)
    survives a crashed member worker bitwise, super-learner fit included."""
    monkeypatch.setenv(
        "REPRO_FAULTS", f"train_crash:member={WORKER_TRAINED_MEMBER}:attempt=0"
    )
    retries_before = _counter("repro_training_task_retries_total")

    config = copy.deepcopy(experiment_dict())
    config["training"] = dict(config["training"], workers=2)
    chaos = run_experiment(config)

    _assert_same_members(serial_result.run, chaos.run)
    np.testing.assert_array_equal(
        chaos.ensemble.super_learner_weights,
        serial_result.ensemble.super_learner_weights,
    )
    assert _counter("repro_training_task_retries_total") >= retries_before + 1


def test_retries_exhausted_raises_naming_member(experiment_dict, monkeypatch):
    """A member that fails on every attempt surfaces a clear error naming it
    (no hang, no silent truncation of the ensemble)."""
    monkeypatch.setenv("REPRO_FAULTS", "train_error:member=mlp-var-003")
    config = _scratch_config(experiment_dict, workers=2, max_task_retries=1)
    with pytest.raises(RuntimeError, match="mlp-var-003") as excinfo:
        run_experiment(config)
    assert "2 times" in str(excinfo.value)  # 1 attempt + 1 retry


def test_worker_metrics_merge_into_parent(experiment_dict):
    """Satellite (a): per-member metrics recorded inside worker processes
    (e.g. epoch counters) ship back in ``MemberOutcome`` and accumulate in
    the parent registry."""
    epochs_before = _counter("repro_training_epochs_total")
    run = run_experiment(_scratch_config(experiment_dict, workers=2)).run
    trained_epochs = sum(r.epochs for r in run.ledger.records)
    assert trained_epochs > 0
    assert _counter("repro_training_epochs_total") >= epochs_before + trained_epochs


# --------------------------------------------------------------------------
# kill -9 the parent, then `repro train --resume`
# --------------------------------------------------------------------------


def _child_pids(pid: int) -> list:
    """Direct children of ``pid`` (procfs scan; spawn workers only)."""
    children = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            stat = Path("/proc", entry, "stat").read_text()
            ppid = int(stat.rsplit(")", 1)[1].split()[1])
        except (OSError, ValueError, IndexError):
            continue
        if ppid == pid:
            children.append(int(entry))
    return children


def _reap_shm_residue() -> None:
    # The SIGKILLed parent never ran SharedDataset cleanup; unlink whatever
    # its orphans left so later tests' residue assertions stay meaningful.
    for leftover in Path("/dev/shm").glob("repro-shm*"):
        try:
            leftover.unlink()
        except OSError:
            pass


@pytest.mark.skipif(not sys.platform.startswith("linux"), reason="procfs + /dev/shm")
def test_parent_kill9_then_resume_skips_journaled_members(
    experiment_dict, scratch_serial, tmp_path
):
    """kill -9 the training CLI mid-run; ``--resume`` restores the journaled
    members bitwise and only trains the remainder (acceptance criterion)."""
    config = _scratch_config(experiment_dict, workers=2, task_timeout=600.0)
    spec_path = tmp_path / "exp.json"
    spec_path.write_text(json.dumps(config), encoding="utf-8")
    out = tmp_path / "artifact"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    # The last member hangs far beyond the point where we kill the parent, so
    # the run is guaranteed to still be alive once earlier members journaled.
    env["REPRO_FAULTS"] = "train_hang:member=mlp-var-003:seconds=600"

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "train", "--config", str(spec_path),
         "--output", str(out), "--no-eval"],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    member_markers = out / "checkpoint" / "members"
    try:
        deadline = time.monotonic() + 120
        while len(list(member_markers.glob("*.json"))) < 2:
            if proc.poll() is not None:
                pytest.fail(
                    "training exited before it could be killed:\n"
                    + (proc.stderr.read() or "")
                )
            if time.monotonic() > deadline:
                pytest.fail("no members journaled within 120s")
            time.sleep(0.05)
        workers = _child_pids(proc.pid)
        proc.kill()  # SIGKILL: no cleanup of any kind runs
        proc.wait(timeout=30)
    finally:
        for pid in _child_pids(proc.pid) + ([] if proc.poll() is not None else [proc.pid]):
            try:
                os.kill(pid, signal.SIGKILL)
            except OSError:
                pass
        for pid in locals().get("workers", []):
            try:
                os.kill(pid, signal.SIGKILL)
            except OSError:
                pass
        proc.stderr.close()
        _reap_shm_residue()

    journaled = len(list(member_markers.glob("*.json")))
    assert journaled >= 2
    assert not (out / "manifest.json").exists()

    metrics_path = tmp_path / "metrics.prom"
    resume = subprocess.run(
        [sys.executable, "-m", "repro", "train", "--config", str(spec_path),
         "--output", str(out), "--resume", "--no-eval",
         "--metrics-file", str(metrics_path)],
        env=dict(env, REPRO_FAULTS=""),
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert resume.returncode == 0, resume.stderr

    # The resumed process restored every journaled member instead of
    # retraining it...
    metrics_text = metrics_path.read_text(encoding="utf-8")
    restored = 0.0
    for line in metrics_text.splitlines():
        if line.startswith("repro_training_resume_restored_networks"):
            restored = float(line.split()[-1])
    assert restored >= journaled

    # ...and the finished artifact is bitwise the fault-free ensemble, with
    # the journal discarded now that the manifest is the commit point.
    _assert_same_members(scratch_serial, load_ensemble_run(out))
    assert not (out / "checkpoint").exists()


def test_resume_refused_without_flag(experiment_dict, tmp_path):
    """An existing journal is never silently overwritten: the CLI-facing
    entrypoint demands an explicit --resume."""
    config = _scratch_config(experiment_dict)
    spec = run_experiment(config, checkpoint_dir=tmp_path)  # leaves a journal
    assert (tmp_path / "checkpoint" / "checkpoint.json").is_file()
    with pytest.raises(FileExistsError, match="--resume"):
        run_experiment(config, checkpoint_dir=tmp_path)
    del spec


# --------------------------------------------------------------------------
# serving pool: hung-worker eviction
# --------------------------------------------------------------------------


def test_serving_pool_evicts_hung_worker(saved_artifact, serial_result, monkeypatch):
    """A serving worker wedged past ``dispatch_timeout`` is SIGKILLed, its
    in-flight request fails promptly (not after the full request timeout),
    and the respawned worker serves correct answers again."""
    from repro.parallel.serving import PoolPredictor

    monkeypatch.setenv("REPRO_FAULTS", "serve_hang:times=1:seconds=60")
    hangs_before = _counter("repro_serve_worker_hangs_total")
    x = serial_result.dataset.x_test[:8]
    expected = serial_result.ensemble.predict(x)

    with PoolPredictor(
        saved_artifact,
        workers=1,
        dispatch_timeout=1.0,
        restart_backoff=1.0,
        request_timeout=120.0,
    ) as pool:
        start = time.monotonic()
        with pytest.raises(RuntimeError, match="worker 0 died"):
            pool.predict(x)
        # Failed via the dispatch deadline, far below the request timeout.
        assert time.monotonic() - start < 30
        # The respawned worker must not inherit the fault.
        monkeypatch.delenv("REPRO_FAULTS")
        assert _counter("repro_serve_worker_hangs_total") >= hangs_before + 1

        deadline = time.monotonic() + 60
        while pool.healthz()["status"] != "ok":
            if time.monotonic() > deadline:
                pytest.fail(f"pool never recovered: {pool.healthz()}")
            time.sleep(0.1)
        np.testing.assert_array_equal(pool.predict(x), expected)
        assert pool.healthz()["restarts"] >= 1


# --------------------------------------------------------------------------
# serving pool, shm transport: crash/hang mid-slot-write
# --------------------------------------------------------------------------


def _wait_until_ok(pool, timeout=60.0):
    deadline = time.monotonic() + timeout
    while pool.healthz()["status"] != "ok":
        if time.monotonic() > deadline:
            pytest.fail(f"pool never recovered: {pool.healthz()}")
        time.sleep(0.1)


def test_shm_worker_crash_mid_slot_write_recovers(
    saved_artifact, serial_result, monkeypatch, shm_sweep
):
    """SIGKILL the worker *between* inference and the result slot write — the
    nastiest shm moment: the dispatcher holds regions reserved for a
    descriptor that will never arrive.  The pool must fail the request
    promptly, retire the dead arena (new generation, no /dev/shm leak) and
    serve bitwise-correct answers from the respawn."""
    from repro.parallel.serving import PoolPredictor

    monkeypatch.setenv("REPRO_FAULTS", "serve_shm_write_crash:times=1")
    x = serial_result.dataset.x_test[:8]
    expected = serial_result.ensemble.predict_proba(x)

    with PoolPredictor(
        saved_artifact,
        workers=1,
        transport="shm",
        restart_backoff=0.5,
        supervise_interval=0.05,
        request_timeout=120.0,
    ) as pool:
        assert pool.info()["arenas"][0]["generation"] == 0
        start = time.monotonic()
        with pytest.raises(RuntimeError, match="worker 0"):
            pool.predict_proba(x)
        assert time.monotonic() - start < 30  # failed at death, not timeout
        monkeypatch.delenv("REPRO_FAULTS")

        _wait_until_ok(pool)
        info = pool.info()
        assert info["transport"] == "shm"
        # The respawn swapped in a fresh arena generation with nothing
        # reserved — the regions stranded by the crash died with gen 0.
        arena = info["arenas"][0]
        assert arena["generation"] >= 1
        assert arena["inflight_dispatches"] == 0
        assert arena["request_used_bytes"] == 0
        np.testing.assert_array_equal(pool.predict_proba(x), expected)
        assert pool.healthz()["restarts"] >= 1
    # shm_sweep asserts the retired generation left no /dev/shm residue.


def test_shm_worker_hang_mid_slot_write_is_evicted(
    saved_artifact, serial_result, monkeypatch, shm_sweep
):
    """A worker wedged mid-slot-write past ``dispatch_timeout`` is SIGKILLed
    by the supervisor and replaced — same deadline contract as the pickle
    path, now covering the arena write."""
    from repro.parallel.serving import PoolPredictor

    monkeypatch.setenv("REPRO_FAULTS", "serve_shm_write_hang:times=1:seconds=60")
    hangs_before = _counter("repro_serve_worker_hangs_total")
    x = serial_result.dataset.x_test[:8]
    expected = serial_result.ensemble.predict_proba(x)

    with PoolPredictor(
        saved_artifact,
        workers=1,
        transport="shm",
        dispatch_timeout=1.0,
        restart_backoff=0.5,
        supervise_interval=0.05,
        request_timeout=120.0,
    ) as pool:
        start = time.monotonic()
        with pytest.raises(RuntimeError, match="worker 0 died"):
            pool.predict_proba(x)
        assert time.monotonic() - start < 30
        monkeypatch.delenv("REPRO_FAULTS")
        assert _counter("repro_serve_worker_hangs_total") >= hangs_before + 1

        _wait_until_ok(pool)
        assert pool.info()["arenas"][0]["generation"] >= 1
        np.testing.assert_array_equal(pool.predict_proba(x), expected)

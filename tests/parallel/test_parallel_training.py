"""Serial vs parallel ensemble training equivalence.

The contract of ``TrainingConfig(workers=N)``: given the same seeds, the
parallel engine produces *bitwise* the same ensemble as the serial loop —
same member weights, same predictions, same ledger structure — while the
ledger additionally records the phase makespan (critical-path wall clock),
which can never exceed the summed per-member training seconds.
"""

import copy
import multiprocessing as mp
import os
import sys

import numpy as np
import pytest

from repro.api import run_experiment
from repro.nn.training import TrainingConfig


def with_workers(config_dict, workers):
    """A deep copy of an experiment dict with ``training.workers`` set."""
    out = copy.deepcopy(config_dict)
    out["training"] = dict(out["training"], workers=workers)
    return out


def _assert_same_ensembles(reference, candidate, x):
    assert [m.name for m in reference.ensemble.members] == [
        m.name for m in candidate.ensemble.members
    ]
    for ref_member, cand_member in zip(
        reference.ensemble.members, candidate.ensemble.members
    ):
        ref_weights = ref_member.model.get_weights()
        cand_weights = cand_member.model.get_weights()
        assert ref_weights.keys() == cand_weights.keys()
        for layer in ref_weights:
            assert ref_weights[layer].keys() == cand_weights[layer].keys()
            for key in ref_weights[layer]:
                np.testing.assert_array_equal(
                    cand_weights[layer][key],
                    ref_weights[layer][key],
                    err_msg=f"{ref_member.name}/{layer}/{key}",
                )
    np.testing.assert_array_equal(
        candidate.ensemble.predict_proba_all(x), reference.ensemble.predict_proba_all(x)
    )


def _assert_no_parallel_residue():
    if sys.platform.startswith("linux"):
        leftovers = [f for f in os.listdir("/dev/shm") if f.startswith("repro-shm")]
        assert leftovers == [], f"leaked shared-memory segments: {leftovers}"
    assert mp.active_children() == []


def test_mothernets_parallel_matches_serial_bitwise(serial_result, experiment_dict):
    """workers=4 vs workers=1: same weights, predictions, and SL fit.

    The member family deliberately contains members whose hatching plan is
    empty (they equal their cluster's MotherNet) — the sequential-dependency
    edge the parallel path must replicate faithfully.
    """
    parallel = run_experiment(with_workers(experiment_dict(), 4))
    x = serial_result.dataset.x_test
    _assert_same_ensembles(serial_result.run, parallel.run, x)
    np.testing.assert_array_equal(
        parallel.ensemble.super_learner_weights,
        serial_result.ensemble.super_learner_weights,
    )
    _assert_no_parallel_residue()


def test_mothernets_parallel_ledger(serial_result, experiment_dict):
    parallel = run_experiment(with_workers(experiment_dict(), 2)).run
    serial = serial_result.run
    assert [r.network for r in parallel.ledger.records] == [
        r.network for r in serial.ledger.records
    ]
    assert [r.epochs for r in parallel.ledger.records] == [
        r.epochs for r in serial.ledger.records
    ]
    assert [r.samples_per_epoch for r in parallel.ledger.records] == [
        r.samples_per_epoch for r in serial.ledger.records
    ]
    # The parallel run recorded a makespan for the member phase; the serial
    # run reports makespan == total by construction.
    assert "member" in parallel.ledger.phase_makespans
    assert serial.ledger.phase_makespans == {}
    assert serial.makespan_seconds == pytest.approx(serial.total_training_seconds)
    _assert_no_parallel_residue()


@pytest.mark.parametrize("approach", ["full-data", "bagging"])
def test_scratch_baselines_parallel_match_serial(experiment_dict, approach):
    config = experiment_dict(approach=approach)
    config.pop("trainer")
    config.pop("super_learner")
    serial = run_experiment(config)
    parallel = run_experiment(with_workers(config, 2))
    _assert_same_ensembles(serial.run, parallel.run, serial.dataset.x_test)
    assert "scratch" in parallel.run.ledger.phase_makespans
    _assert_no_parallel_residue()


def test_parallel_makespan_bounded_by_member_seconds(experiment_dict):
    """Makespan (critical path) <= sum of per-member training seconds.

    Sized so training compute dominates worker start-up: each member's
    in-worker wall clock covers the whole execution window on a loaded
    machine, so the sum across members bounds the window from above.
    """
    config = experiment_dict(
        approach="full-data",
        dataset={
            "name": "tabular",
            "train_samples": 1536,
            "test_samples": 32,
            "num_classes": 4,
            "num_features": 12,
            "seed": 5,
        },
        members={
            "family": "mlp",
            "count": 4,
            "input_features": 12,
            "num_classes": 4,
            "base_width": 192,
            "seed": 1,
        },
        training={
            "max_epochs": 8,
            "min_epochs": 8,
            "convergence_patience": 8,
            "batch_size": 32,
            "learning_rate": 0.05,
            "workers": 4,
        },
    )
    config.pop("trainer")
    config.pop("super_learner")
    run = run_experiment(config).run
    member_seconds = sum(r.wall_clock_seconds for r in run.ledger.records)
    assert run.ledger.makespan_seconds <= member_seconds
    assert run.makespan_seconds == run.ledger.makespan_seconds
    _assert_no_parallel_residue()


def test_snapshot_ignores_workers(experiment_dict):
    """Snapshot cycles are sequential; workers>1 must not change results."""
    from repro.arch.zoo import mlp_family

    spec = mlp_family(count=1, input_features=12, num_classes=4, base_width=10, seed=1)[0]
    config = experiment_dict(
        approach="snapshot",
        members=[spec],
        trainer={"num_snapshots": 2, "epochs_per_cycle": 2},
    )
    config.pop("super_learner")
    serial = run_experiment(config)
    parallel = run_experiment(with_workers(config, 4))
    _assert_same_ensembles(serial.run, parallel.run, serial.dataset.x_test)
    assert parallel.run.ledger.phase_makespans == {}


def test_training_config_workers_validation():
    with pytest.raises(ValueError):
        TrainingConfig(workers=0)
    assert TrainingConfig().workers == 1
    assert TrainingConfig(workers=3).scaled(0.5).workers == 3


def test_training_config_workers_round_trips_through_dict():
    from repro.api import training_config_from_dict, training_config_to_dict

    config = TrainingConfig(max_epochs=2, workers=4)
    data = training_config_to_dict(config)
    assert data["workers"] == 4
    assert training_config_from_dict(data).workers == 4
    # Pre-existing dicts without the key keep the serial default.
    data.pop("workers")
    assert training_config_from_dict(data).workers == 1

"""Zero-downtime hot-swap acceptance for the prediction pool.

The kill-style guarantee under test: while :meth:`PoolPredictor.swap` rolls
every worker onto a new artifact generation, concurrent clients must see
**zero dropped requests and zero wrong answers** — every single response is
bitwise-equal to what a cold-started predictor on either the old or the new
generation returns for the same rows, never a mix of the two within one
request.
"""

from __future__ import annotations

import shutil
import threading
import time

import numpy as np
import pytest

from repro.api import EnsemblePredictor, run_experiment
from repro.core.artifact_store import ArtifactStore
from repro.parallel import PoolPredictor


@pytest.fixture(scope="module")
def swap_store(saved_artifact, experiment_dict, tmp_path_factory):
    """A generation store holding gen-0 (the shared session artifact) and a
    gen-1 retrained on a fresh data draw.  Tests move CURRENT themselves."""
    root = tmp_path_factory.mktemp("hot-swap") / "store"
    shutil.copytree(saved_artifact, root)
    store = ArtifactStore.open(root)
    fresh = run_experiment(
        experiment_dict(dataset=dict(experiment_dict()["dataset"], seed=6))
    )
    generation = store.add_generation(fresh.run, parent_generation=0)
    assert generation == 1
    return store


@pytest.fixture(scope="module")
def refs(swap_store, serial_result):
    """Cold-start reference answers for both generations on one probe set."""
    probe = serial_result.dataset.x_test
    ref0 = EnsemblePredictor.load(swap_store.root, generation=0).predict_proba(probe)
    ref1 = EnsemblePredictor.load(swap_store.root, generation=1).predict_proba(probe)
    # The generations must actually disagree, or "old-or-new" proves nothing.
    assert not np.array_equal(ref0, ref1)
    return probe, ref0, ref1


def test_swap_under_fire_drops_nothing_and_mixes_nothing(
    swap_store, refs, shm_sweep
):
    probe, ref0, ref1 = refs
    swap_store.promote(0)
    pool = PoolPredictor(swap_store.root, workers=2, max_wait_ms=1.0)
    try:
        assert pool.generation == 0
        stop = threading.Event()
        failures = []
        counts = {"old": 0, "new": 0}
        lock = threading.Lock()

        def hammer(tid):
            i = 0
            while not stop.is_set():
                start = (tid * 7 + i) % 40
                size = 1 + ((tid + i) % 7)
                batch = probe[start : start + size]
                try:
                    out = pool.predict_proba(batch)
                except Exception as exc:  # a dropped/failed request
                    failures.append(f"thread {tid} request failed: {exc!r}")
                    return
                rows = batch.shape[0]
                if np.array_equal(out, ref0[start : start + rows]):
                    with lock:
                        counts["old"] += 1
                elif np.array_equal(out, ref1[start : start + rows]):
                    with lock:
                        counts["new"] += 1
                else:
                    failures.append(
                        f"thread {tid} got an answer matching neither "
                        f"generation for rows {start}:{start + rows}"
                    )
                    return
                i += 1

        threads = [
            threading.Thread(target=hammer, args=(tid,)) for tid in range(4)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.3)  # traffic flowing on generation 0
        swap_store.promote(1)
        result = pool.swap()
        time.sleep(0.3)  # traffic flowing on generation 1
        stop.set()
        for thread in threads:
            thread.join(timeout=60)
        assert all(not thread.is_alive() for thread in threads)
        assert not failures, failures[:3]
        assert result["status"] == "ok"
        assert result["previous_generation"] == 0
        assert result["generation"] == 1
        assert result["workers_respawned"] == 2
        assert counts["old"] > 0 and counts["new"] > 0, counts
        assert pool.generation == 1
        assert pool.info()["generation"] == 1
        assert pool.info()["swaps"] == 1
        assert pool.healthz()["generation"] == 1
        assert pool.healthz()["status"] == "ok"
        # Post-swap the pool answers purely from the new generation.
        np.testing.assert_array_equal(pool.predict_proba(probe), ref1)
    finally:
        pool.close()


def test_swap_without_pointer_move_is_a_noop(swap_store, refs, shm_sweep):
    probe, ref0, _ = refs
    swap_store.promote(0)
    pool = PoolPredictor(swap_store.root, workers=1, max_wait_ms=0.0)
    try:
        result = pool.swap()
        assert result["status"] == "noop"
        assert result["workers_respawned"] == 0
        assert pool.generation == 0
        np.testing.assert_array_equal(pool.predict_proba(probe[:8]), ref0[:8])
    finally:
        pool.close()


def test_swap_to_explicit_generation_and_back(swap_store, refs, shm_sweep):
    probe, ref0, ref1 = refs
    swap_store.promote(0)
    pool = PoolPredictor(swap_store.root, workers=1, max_wait_ms=0.0)
    try:
        forward = pool.swap(generation=1)
        assert forward["status"] == "ok"
        assert pool.generation == 1
        np.testing.assert_array_equal(pool.predict_proba(probe[:8]), ref1[:8])
        rollback = pool.swap(generation=0)
        assert rollback["status"] == "ok"
        assert rollback["previous_generation"] == 1
        assert pool.generation == 0
        np.testing.assert_array_equal(pool.predict_proba(probe[:8]), ref0[:8])
    finally:
        pool.close()


def test_second_swap_is_refused_while_one_runs(swap_store, shm_sweep):
    swap_store.promote(0)
    pool = PoolPredictor(swap_store.root, workers=1, max_wait_ms=0.0)
    try:
        assert pool._swap_lock.acquire(blocking=False)
        try:
            with pytest.raises(RuntimeError, match="already in progress"):
                pool.swap(generation=1)
        finally:
            pool._swap_lock.release()
    finally:
        pool.close()


def test_bare_directory_swap_is_a_noop(saved_artifact, shm_sweep):
    pool = PoolPredictor(saved_artifact, workers=1, max_wait_ms=0.0)
    try:
        result = pool.swap()
        assert result["status"] == "noop"
        assert pool.generation == 0
    finally:
        pool.close()

"""End-to-end test of ``python -m repro serve``: ephemeral port, concurrent
HTTP clients, bitwise parity with EnsemblePredictor, clean SIGTERM exit."""

import json
import os
import signal
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.api import EnsemblePredictor

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def server(saved_artifact):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--artifact",
            str(saved_artifact),
            "--port",
            "0",
            "--workers",
            "2",
            "--max-wait-ms",
            "1.0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        line = proc.stdout.readline()
        banner = json.loads(line)
        assert banner["event"] == "serving"
        yield proc, banner["url"]
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)


def _post(url, payload, timeout=60):
    request = urllib.request.Request(
        url + "/predict",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def test_serve_round_trip_concurrent(server, saved_artifact, serial_result):
    _, url = server
    reference = EnsemblePredictor.load(saved_artifact)
    x = serial_result.dataset.x_test

    with urllib.request.urlopen(url + "/healthz", timeout=30) as response:
        health = json.loads(response.read())
    assert health["status"] == "ok"
    assert health["alive_workers"] == 2

    with urllib.request.urlopen(url + "/info", timeout=30) as response:
        info = json.loads(response.read())
    assert info["workers"] == 2
    assert info["num_members"] == len(reference.ensemble)

    results = []

    def client(i):
        batch = x[i * 3 : i * 3 + 4]
        out = _post(url, {"inputs": batch.tolist(), "proba": True})
        expected = reference.predict_proba(batch)
        # JSON carries exact float64 representations of the float32 values,
        # so equality (not approx) is the right check.
        results.append(np.array_equal(np.asarray(out["probabilities"]), expected))

    threads = [threading.Thread(target=client, args=(i,)) for i in range(12)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert all(results) and len(results) == 12

    labels = _post(url, {"inputs": x[:10].tolist(), "method": "vote"})
    assert labels["predictions"] == reference.predict(x[:10], method="vote").tolist()


def test_serve_rejects_malformed_requests(server):
    _, url = server
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(url, {"inputs": [[1.0, 2.0]]})
    assert excinfo.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(url, {})
    assert excinfo.value.code == 400


def test_serve_shuts_down_cleanly_on_sigterm(saved_artifact):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--artifact",
            str(saved_artifact),
            "--port",
            "0",
            "--workers",
            "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    banner = json.loads(proc.stdout.readline())
    assert banner["event"] == "serving"
    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=60)
    assert proc.returncode == 0
    assert json.loads(out.strip().splitlines()[-1]) == {"event": "stopped"}

"""End-to-end test of ``python -m repro serve``: ephemeral port, concurrent
HTTP clients, bitwise parity with EnsemblePredictor, clean SIGTERM exit."""

import json
import os
import signal
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.api import EnsemblePredictor

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def server(saved_artifact):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--artifact",
            str(saved_artifact),
            "--port",
            "0",
            "--workers",
            "2",
            "--max-wait-ms",
            "1.0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        line = proc.stdout.readline()
        banner = json.loads(line)
        assert banner["event"] == "serving"
        import repro

        assert banner["version"] == repro.__version__
        assert banner["mode"] == "pool"
        yield proc, banner["url"]
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)


def _post(url, payload, timeout=60):
    request = urllib.request.Request(
        url + "/predict",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def test_serve_round_trip_concurrent(server, saved_artifact, serial_result):
    _, url = server
    reference = EnsemblePredictor.load(saved_artifact)
    x = serial_result.dataset.x_test

    with urllib.request.urlopen(url + "/healthz", timeout=30) as response:
        health = json.loads(response.read())
    assert health["status"] == "ok"
    assert health["alive_workers"] == 2

    with urllib.request.urlopen(url + "/info", timeout=30) as response:
        info = json.loads(response.read())
    assert info["workers"] == 2
    assert info["num_members"] == len(reference.ensemble)
    assert info["mode"] == "pool"
    assert info["uptime_seconds"] > 0
    assert "p99" in info["request_latency_seconds"]

    results = []

    def client(i):
        batch = x[i * 3 : i * 3 + 4]
        out = _post(url, {"inputs": batch.tolist(), "proba": True})
        expected = reference.predict_proba(batch)
        # JSON carries exact float64 representations of the float32 values,
        # so equality (not approx) is the right check.
        results.append(np.array_equal(np.asarray(out["probabilities"]), expected))

    threads = [threading.Thread(target=client, args=(i,)) for i in range(12)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert all(results) and len(results) == 12

    labels = _post(url, {"inputs": x[:10].tolist(), "method": "vote"})
    assert labels["predictions"] == reference.predict(x[:10], method="vote").tolist()


def test_serve_metrics_endpoint_exposes_prometheus_text(server):
    """GET /metrics must be valid Prometheus text exposition with the core
    serving series populated by the traffic the earlier tests generated."""
    _, url = server
    # Generate at least one request in case this test runs in isolation.
    _post(url, {"inputs": [[0.0] * 12]})
    request = urllib.request.Request(url + "/metrics")
    with urllib.request.urlopen(request, timeout=30) as response:
        assert response.status == 200
        content_type = response.headers.get("Content-Type", "")
        body = response.read().decode("utf-8")
    assert content_type.startswith("text/plain")
    assert "version=0.0.4" in content_type
    lines = body.splitlines()
    assert 'repro_serve_requests_total{status="ok"}' in body
    assert "# TYPE repro_serve_request_latency_seconds histogram" in lines
    assert 'repro_serve_request_latency_seconds_bucket{le="+Inf"}' in body
    assert "repro_serve_request_latency_seconds_count" in body
    assert "repro_serve_workers_alive 2" in lines
    assert "# TYPE repro_serve_worker_restarts_total counter" in lines
    assert "repro_http_requests_total" in body
    assert "repro_process_cpu_seconds_total" in body
    # Counters populated by real traffic, not just declared.
    ok_line = next(
        line for line in lines if line.startswith('repro_serve_requests_total{status="ok"}')
    )
    assert float(ok_line.rsplit(" ", 1)[1]) >= 1


def test_serve_rejects_malformed_requests(server):
    _, url = server
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(url, {"inputs": [[1.0, 2.0]]})
    assert excinfo.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(url, {})
    assert excinfo.value.code == 400


def test_serve_healthz_degrades_and_recovers_after_worker_sigkill(server):
    """SIGKILL a pool worker through its advertised pid: /healthz must report
    'degraded' during the gap and return to 'ok' once the supervisor's
    respawned worker is warm; /metrics must count the restart.

    Runs last against the shared server — recovery restores full capacity.
    """
    import time

    _, url = server

    def get(path):
        with urllib.request.urlopen(url + path, timeout=30) as response:
            return json.loads(response.read())

    info = get("/info")
    assert len(info["worker_pids"]) == 2
    os.kill(info["worker_pids"][0], signal.SIGKILL)

    def wait_status(value, timeout):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if get("/healthz")["status"] == value:
                return True
            time.sleep(0.05)
        return get("/healthz")["status"] == value

    assert wait_status("degraded", timeout=15.0)
    assert wait_status("ok", timeout=90.0)
    health = get("/healthz")
    assert health["alive_workers"] == 2
    assert health["restarts"] >= 1

    with urllib.request.urlopen(url + "/metrics", timeout=30) as response:
        body = response.read().decode("utf-8")
    restarts = next(
        line
        for line in body.splitlines()
        if line.startswith("repro_serve_worker_restarts_total ")
    )
    assert float(restarts.rsplit(" ", 1)[1]) >= 1

    # The recovered pool still answers.
    out = _post(url, {"inputs": [[0.0] * 12], "proba": True})
    assert len(out["probabilities"]) == 1


def test_serve_shuts_down_cleanly_on_sigterm(saved_artifact):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--artifact",
            str(saved_artifact),
            "--port",
            "0",
            "--workers",
            "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    banner = json.loads(proc.stdout.readline())
    assert banner["event"] == "serving"
    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=60)
    assert proc.returncode == 0
    assert json.loads(out.strip().splitlines()[-1]) == {"event": "stopped"}

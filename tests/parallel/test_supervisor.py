"""Self-healing serving pool: worker death detection, respawn with bounded
backoff, health degradation and recovery, and no process / shared-memory
leaks across a crash-and-recover cycle."""

import multiprocessing as mp
import os
import sys
import time

import numpy as np
import pytest

from repro.api import EnsemblePredictor
from repro.parallel import PoolPredictor


def _wait_for(predicate, timeout, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _assert_no_residue(processes):
    assert not set(processes) & set(mp.active_children())
    if sys.platform.startswith("linux"):
        assert [f for f in os.listdir("/dev/shm") if f.startswith("repro-shm")] == []


def test_sigkilled_worker_is_respawned_and_capacity_restored(
    saved_artifact, serial_result
):
    """SIGKILL one of two workers: healthz must degrade during the gap, the
    supervisor must respawn the worker, and full capacity must return — with
    predictions still bitwise identical to the single-process facade."""
    pool = PoolPredictor(
        saved_artifact,
        workers=2,
        max_wait_ms=1.0,
        restart_backoff=0.1,
        supervise_interval=0.05,
    )
    reference = EnsemblePredictor.load(saved_artifact)
    x = serial_result.dataset.x_test
    try:
        assert pool.healthz()["status"] == "ok"
        np.testing.assert_array_equal(pool.predict_proba(x), reference.predict_proba(x))

        victim = pool._processes[0]
        victim.kill()
        victim.join(timeout=10)

        # The gap: below capacity until the respawned worker is warm.
        assert _wait_for(lambda: pool.healthz()["status"] == "degraded", timeout=10.0)
        degraded = pool.healthz()
        assert degraded["alive_workers"] == 1
        assert degraded["workers"] == 2

        # Recovery: supervisor respawns from the artifact dir and healthz
        # returns to ok once the new predictor is loaded.
        assert _wait_for(lambda: pool.healthz()["status"] == "ok", timeout=60.0)
        recovered = pool.healthz()
        assert recovered["alive_workers"] == 2
        assert recovered["restarts"] >= 1
        assert pool.info()["restarts"] >= 1
        new_pid = pool._processes[0].pid
        assert new_pid is not None and new_pid != victim.pid

        # The restored pool serves, and answers stay bitwise identical.
        np.testing.assert_array_equal(
            pool.predict_proba(x[:16]), reference.predict_proba(x[:16])
        )
    finally:
        processes = list(pool._processes)
        pool.close()
    assert all(not p.is_alive() for p in processes)
    _assert_no_residue(processes)


def test_single_worker_pool_survives_kill_and_serves_during_recovery(
    saved_artifact, serial_result
):
    """workers=1: the kill takes the pool to 'down'; a predict issued during
    the gap waits for the respawn (worker_wait) instead of failing, and the
    pool comes back to 'ok'."""
    pool = PoolPredictor(
        saved_artifact,
        workers=1,
        max_wait_ms=0.0,
        restart_backoff=0.1,
        supervise_interval=0.05,
        worker_wait=120.0,
    )
    reference = EnsemblePredictor.load(saved_artifact)
    x = serial_result.dataset.x_test[:8]
    try:
        pool._processes[0].kill()
        pool._processes[0].join(timeout=10)
        assert _wait_for(lambda: pool.healthz()["status"] == "down", timeout=10.0)
        # Dispatch during the outage: held until the respawned worker loads.
        np.testing.assert_array_equal(pool.predict_proba(x), reference.predict_proba(x))
        assert _wait_for(lambda: pool.healthz()["status"] == "ok", timeout=60.0)
        assert pool.healthz()["restarts"] >= 1
    finally:
        processes = list(pool._processes)
        pool.close()
    _assert_no_residue(processes)


def test_restart_disabled_evicts_but_does_not_respawn(saved_artifact, serial_result):
    """restart_workers=False keeps the old capacity-loss semantics: the dead
    worker is evicted (degraded health) and never replaced."""
    pool = PoolPredictor(
        saved_artifact,
        workers=2,
        max_wait_ms=1.0,
        restart_workers=False,
        supervise_interval=0.05,
    )
    x = serial_result.dataset.x_test[:8]
    try:
        pool._processes[1].kill()
        pool._processes[1].join(timeout=10)
        assert _wait_for(lambda: pool.healthz()["status"] == "degraded", timeout=10.0)
        # Give a would-be respawn plenty of time, then confirm none happened.
        time.sleep(1.0)
        health = pool.healthz()
        assert health["status"] == "degraded"
        assert health["alive_workers"] == 1
        assert health["restarts"] == 0
        # The surviving worker keeps serving.
        assert pool.predict(x).shape == (8,)
    finally:
        processes = list(pool._processes)
        pool.close()
    _assert_no_residue(processes)


def test_repeated_kills_bounded_backoff_and_recovery(saved_artifact, serial_result):
    """Kill the same worker twice: the supervisor keeps respawning (backoff
    grows but stays bounded) and the pool ends at full capacity."""
    pool = PoolPredictor(
        saved_artifact,
        workers=2,
        max_wait_ms=1.0,
        restart_backoff=0.05,
        restart_backoff_max=0.2,
        supervise_interval=0.05,
    )
    try:
        for _ in range(2):
            pool._processes[0].kill()
            pool._processes[0].join(timeout=10)
            assert _wait_for(lambda: pool.healthz()["status"] == "ok", timeout=60.0)
        assert pool.healthz()["restarts"] >= 2
        x = serial_result.dataset.x_test[:4]
        assert pool.predict(x).shape == (4,)
    finally:
        processes = list(pool._processes)
        pool.close()
    _assert_no_residue(processes)


def test_backoff_schedule_is_bounded():
    """The per-attempt backoff doubles from restart_backoff and saturates at
    restart_backoff_max (the 'bounded restart backoff' contract)."""
    base, cap = 0.5, 30.0
    delays = [min(base * (2 ** attempt), cap) for attempt in range(12)]
    assert delays[0] == base
    assert all(later >= earlier for earlier, later in zip(delays, delays[1:]))
    assert delays[-1] == cap
    assert max(delays) <= cap


def test_pool_validation_of_supervisor_parameters(saved_artifact):
    with pytest.raises(ValueError):
        PoolPredictor(saved_artifact, restart_backoff=0.0)
    with pytest.raises(ValueError):
        PoolPredictor(saved_artifact, restart_backoff=2.0, restart_backoff_max=1.0)
    with pytest.raises(ValueError):
        PoolPredictor(saved_artifact, supervise_interval=0.0)

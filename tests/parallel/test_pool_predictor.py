"""PoolPredictor correctness: bitwise parity with EnsemblePredictor, thread
safety under concurrent clients, and clean worker shutdown."""

import multiprocessing as mp
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.api import EnsemblePredictor
from repro.parallel import PoolPredictor


@pytest.fixture(scope="module")
def reference(saved_artifact):
    return EnsemblePredictor.load(saved_artifact)


@pytest.fixture(scope="module")
def pool(saved_artifact):
    predictor = PoolPredictor(saved_artifact, workers=2, max_wait_ms=1.0)
    yield predictor
    predictor.close()


def test_pool_matches_single_process_bitwise(pool, reference, serial_result):
    x = serial_result.dataset.x_test
    np.testing.assert_array_equal(pool.predict_proba(x), reference.predict_proba(x))
    np.testing.assert_array_equal(pool.predict(x), reference.predict(x))
    for method in ("average", "vote", "super_learner"):
        np.testing.assert_array_equal(
            pool.predict_proba(x[:9], method=method),
            reference.predict_proba(x[:9], method=method),
        )


def test_pool_accepts_single_unbatched_sample(pool, reference, serial_result):
    sample = serial_result.dataset.x_test[3]
    np.testing.assert_array_equal(
        pool.predict_proba(sample), reference.predict_proba(sample)
    )


def test_pool_under_concurrent_clients(pool, reference, serial_result):
    """Many client threads with ragged batch sizes; every reply must match
    the single-process predictor on the same rows (micro-batching coalesces
    the dispatches but never mixes rows across requests)."""
    x = serial_result.dataset.x_test
    expected_all = reference.predict_proba(x)

    def call(i):
        start = i % 40
        size = 1 + (i % 7)
        batch = x[start : start + size]
        out = pool.predict_proba(batch)
        return np.array_equal(out, expected_all[start : start + batch.shape[0]])

    with ThreadPoolExecutor(max_workers=8) as clients:
        results = list(clients.map(call, range(64)))
    assert all(results)


def test_pool_validates_inputs_in_parent(pool):
    with pytest.raises(ValueError):
        pool.predict_proba(np.zeros((3, 99)))  # wrong feature count
    with pytest.raises(ValueError):
        pool.predict_proba(np.zeros((0, 12)))  # empty batch
    with pytest.raises(ValueError):
        pool.predict_proba(np.zeros((3, 12)), method="nope")


def test_pool_rejects_bad_construction(saved_artifact):
    with pytest.raises(ValueError):
        PoolPredictor(saved_artifact, workers=0)
    with pytest.raises(ValueError):
        PoolPredictor(saved_artifact, method="nope")


def test_dead_worker_fails_requests_promptly_without_respawn(
    saved_artifact, serial_result
):
    """With the supervisor's respawn disabled, killing the only worker must
    fail subsequent requests quickly (health-based eviction), not stall until
    request_timeout — the pre-supervisor contract, still available via
    ``restart_workers=False``.  (Respawn behaviour is covered in
    test_supervisor.py.)"""
    import time

    predictor = PoolPredictor(
        saved_artifact,
        workers=1,
        max_wait_ms=0.0,
        request_timeout=60.0,
        restart_workers=False,
        supervise_interval=0.05,
    )
    try:
        x = serial_result.dataset.x_test[:4]
        predictor.predict(x)  # pool is warm and round-tripping
        predictor._processes[0].kill()
        start = time.monotonic()
        with pytest.raises(RuntimeError, match="died|alive"):
            predictor.predict_proba(x)
        assert time.monotonic() - start < 30.0
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and predictor.healthz()["status"] != "down":
            time.sleep(0.05)
        health = predictor.healthz()
        assert health["status"] == "down"
        assert health["alive_workers"] == 0
        assert health["restarts"] == 0
        with predictor._lock:
            assert predictor._inflight == {}
    finally:
        predictor.close()


def test_pool_close_is_clean_and_final(saved_artifact, serial_result, shm_sweep):
    # shm_sweep: this predictor's arena segments must be gone after close()
    # (the module-scoped pool fixture legitimately keeps its own alive).
    predictor = PoolPredictor(saved_artifact, workers=2)
    x = serial_result.dataset.x_test[:4]
    predictor.predict(x)
    processes = list(predictor._processes)
    predictor.close()
    assert all(not p.is_alive() for p in processes)
    # Only this predictor's workers must be gone (the module-scoped pool
    # fixture is still serving other tests).
    assert not set(processes) & set(mp.active_children())
    with pytest.raises(RuntimeError):
        predictor.predict(x)
    predictor.close()  # idempotent

"""Shared-memory dataset publication: zero-copy views, clean teardown."""

import os
import sys

import numpy as np
import pytest

from repro.parallel.shared_data import AttachedDataset, SharedDataset

pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux"), reason="/dev/shm checks are Linux-specific"
)


def _shm_entries():
    return {name for name in os.listdir("/dev/shm") if name.startswith("repro-shm")}


def test_publish_attach_round_trip():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(32, 3, 4, 4)).astype(np.float32)
    y = rng.integers(0, 5, size=32)
    with SharedDataset({"x": x, "y": y}) as shared:
        attached = AttachedDataset(shared.meta)
        np.testing.assert_array_equal(attached["x"], x)
        np.testing.assert_array_equal(attached["y"], y)
        assert attached["x"].dtype == x.dtype
        # Views share the segment: a write through the publisher's view is
        # visible to the attacher without any copying.
        shared.view("x")[0, 0, 0, 0] = 42.0
        assert attached["x"][0, 0, 0, 0] == 42.0
        attached.close()
    assert not _shm_entries()


def test_close_unlinks_segments_and_is_idempotent():
    shared = SharedDataset({"x": np.zeros(8)})
    assert _shm_entries()
    shared.close()
    assert not _shm_entries()
    shared.close()  # second close is a no-op


def test_attacher_close_does_not_unlink():
    shared = SharedDataset({"x": np.arange(6.0)})
    attached = AttachedDataset(shared.meta)
    attached.close()
    # The publisher's segment must survive its attachers.
    assert _shm_entries()
    np.testing.assert_array_equal(shared.view("x"), np.arange(6.0))
    shared.close()
    assert not _shm_entries()


def test_empty_dataset_rejected():
    with pytest.raises(ValueError):
        SharedDataset({})

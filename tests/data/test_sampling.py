"""Unit tests for bagging and data-split utilities."""

import numpy as np
import pytest

from repro.data import bootstrap_sample, stratified_subset, train_validation_split


def _data(n=200, features=4, classes=5, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, features)), rng.integers(0, classes, size=n)


# ---------------------------------------------------------------------------
# bootstrap_sample (bagging)
# ---------------------------------------------------------------------------


def test_bootstrap_sample_has_original_size_by_default():
    x, y = _data()
    bag = bootstrap_sample(x, y, seed=0)
    assert bag.size == 200
    assert bag.x.shape == x.shape


def test_bootstrap_sample_draws_with_replacement():
    x, y = _data()
    bag = bootstrap_sample(x, y, seed=1)
    assert np.unique(bag.indices).size < 200


def test_bootstrap_unique_fraction_near_632():
    """Sampling n items with replacement keeps ~63.2% unique items for large n
    (the quantity behind bagging's higher bias for data-hungry networks)."""
    x, y = _data(n=2000)
    fractions = [bootstrap_sample(x, y, seed=s).unique_fraction for s in range(5)]
    assert abs(np.mean(fractions) - 0.632) < 0.02


def test_bootstrap_sample_rows_come_from_original_data():
    x, y = _data(n=50)
    bag = bootstrap_sample(x, y, seed=2)
    np.testing.assert_array_equal(bag.x, x[bag.indices])
    np.testing.assert_array_equal(bag.y, y[bag.indices])


def test_bootstrap_sample_custom_size():
    x, y = _data(n=100)
    bag = bootstrap_sample(x, y, seed=3, sample_size=40)
    assert bag.size == 40


def test_bootstrap_is_deterministic_per_seed():
    x, y = _data()
    a = bootstrap_sample(x, y, seed=7)
    b = bootstrap_sample(x, y, seed=7)
    np.testing.assert_array_equal(a.indices, b.indices)


def test_different_seeds_give_different_bags():
    x, y = _data()
    a = bootstrap_sample(x, y, seed=1)
    b = bootstrap_sample(x, y, seed=2)
    assert not np.array_equal(a.indices, b.indices)


def test_bootstrap_validation():
    x, y = _data()
    with pytest.raises(ValueError):
        bootstrap_sample(x, y[:-1])
    with pytest.raises(ValueError):
        bootstrap_sample(np.zeros((0, 3)), np.zeros(0))
    with pytest.raises(ValueError):
        bootstrap_sample(x, y, sample_size=0)


# ---------------------------------------------------------------------------
# train/validation split
# ---------------------------------------------------------------------------


def test_split_sizes():
    x, y = _data(n=100)
    x_train, y_train, x_val, y_val = train_validation_split(x, y, validation_fraction=0.2, seed=0)
    assert x_train.shape[0] == 80 and x_val.shape[0] == 20
    assert y_train.shape[0] == 80 and y_val.shape[0] == 20


def test_split_partitions_the_data():
    x, y = _data(n=60, features=1)
    x_train, _, x_val, _ = train_validation_split(x, y, 0.25, seed=1)
    combined = np.sort(np.concatenate([x_train, x_val]).ravel())
    np.testing.assert_allclose(combined, np.sort(x.ravel()))


def test_split_validation_fraction_bounds():
    x, y = _data(n=10)
    with pytest.raises(ValueError):
        train_validation_split(x, y, 0.0)
    with pytest.raises(ValueError):
        train_validation_split(x, y, 1.0)


def test_split_is_deterministic_per_seed():
    x, y = _data()
    a = train_validation_split(x, y, 0.1, seed=5)
    b = train_validation_split(x, y, 0.1, seed=5)
    np.testing.assert_array_equal(a[0], b[0])


# ---------------------------------------------------------------------------
# stratified subset
# ---------------------------------------------------------------------------


def test_stratified_subset_balances_classes():
    x, y = _data(n=500, classes=5, seed=2)
    sub_x, sub_y = stratified_subset(x, y, samples_per_class=10, seed=0)
    assert sub_x.shape[0] == 50
    assert np.all(np.bincount(sub_y, minlength=5) == 10)


def test_stratified_subset_requires_enough_samples():
    x = np.zeros((4, 2))
    y = np.array([0, 0, 1, 1])
    with pytest.raises(ValueError, match="only"):
        stratified_subset(x, y, samples_per_class=3)


def test_stratified_subset_validation():
    x, y = _data()
    with pytest.raises(ValueError):
        stratified_subset(x, y, samples_per_class=0)

"""Unit tests for the synthetic data-set generators."""

import numpy as np
import pytest

from repro.data import (
    Dataset,
    cifar10_like,
    cifar100_like,
    load_dataset,
    svhn_like,
    synthetic_image_classification,
    synthetic_tabular_classification,
)


def test_dataset_shapes_and_properties():
    ds = cifar10_like(train_samples=128, test_samples=64, image_shape=(3, 8, 8), seed=0)
    assert ds.x_train.shape == (128, 3, 8, 8)
    assert ds.x_test.shape == (64, 3, 8, 8)
    assert ds.input_shape == (3, 8, 8)
    assert ds.train_size == 128 and ds.test_size == 64
    assert ds.num_classes == 10


def test_dataset_validation():
    with pytest.raises(ValueError):
        Dataset("bad", np.zeros((4, 2)), np.zeros(3), np.zeros((2, 2)), np.zeros(2), 2)
    with pytest.raises(ValueError):
        Dataset("bad", np.zeros((4, 2)), np.zeros(4), np.zeros((2, 2)), np.zeros(2), 1)


def test_labels_are_balanced():
    ds = cifar10_like(train_samples=200, test_samples=100, image_shape=(3, 8, 8), seed=1)
    counts = np.bincount(ds.y_train, minlength=10)
    assert counts.max() - counts.min() <= 1


def test_labels_cover_all_classes():
    ds = cifar100_like(train_samples=300, test_samples=200, num_classes=30, seed=2,
                       image_shape=(3, 8, 8))
    assert set(np.unique(ds.y_train)) == set(range(30))


def test_generation_is_deterministic_per_seed():
    a = cifar10_like(train_samples=64, test_samples=32, image_shape=(3, 8, 8), seed=5)
    b = cifar10_like(train_samples=64, test_samples=32, image_shape=(3, 8, 8), seed=5)
    np.testing.assert_array_equal(a.x_train, b.x_train)
    np.testing.assert_array_equal(a.y_test, b.y_test)


def test_different_seeds_give_different_data():
    a = cifar10_like(train_samples=64, test_samples=32, image_shape=(3, 8, 8), seed=1)
    b = cifar10_like(train_samples=64, test_samples=32, image_shape=(3, 8, 8), seed=2)
    assert not np.allclose(a.x_train, b.x_train)


def test_training_data_is_normalised():
    ds = cifar10_like(train_samples=256, test_samples=64, image_shape=(3, 8, 8), seed=3)
    assert abs(ds.x_train.mean()) < 0.05
    assert abs(ds.x_train.std() - 1.0) < 0.05


def test_svhn_like_has_lower_intra_class_variation_than_cifar_like():
    """The SVHN stand-in must be the easier task (the paper's explanation for
    the small ensemble gains on SVHN): within-class scatter relative to
    between-class scatter is smaller."""

    def within_over_between(ds):
        centroids = np.stack([ds.x_train[ds.y_train == c].mean(axis=0) for c in range(10)])
        within = np.mean(
            [np.var(ds.x_train[ds.y_train == c] - centroids[c]) for c in range(10)]
        )
        between = np.var(centroids)
        return within / between

    cifar = cifar10_like(train_samples=500, test_samples=50, image_shape=(3, 8, 8), seed=0)
    svhn = svhn_like(train_samples=500, test_samples=50, image_shape=(3, 8, 8), seed=0)
    assert within_over_between(svhn) < within_over_between(cifar)


def test_images_have_spatial_structure():
    """Neighbouring pixels of the class prototypes are correlated, unlike
    i.i.d. noise, so convolutional features are genuinely useful."""
    ds = cifar10_like(train_samples=256, test_samples=32, image_shape=(3, 16, 16), seed=4)
    image = ds.x_train[0, 0]
    horizontal_diff = np.mean(np.abs(np.diff(image, axis=1)))
    random_pairs = np.mean(np.abs(image.reshape(-1)[:-1] - np.random.default_rng(0).permutation(image.reshape(-1))[:-1]))
    assert horizontal_diff < random_pairs


def test_subset_view():
    ds = cifar10_like(train_samples=100, test_samples=50, image_shape=(3, 8, 8), seed=0)
    small = ds.subset(20, 10)
    assert small.train_size == 20 and small.test_size == 10
    np.testing.assert_array_equal(small.x_train, ds.x_train[:20])


def test_synthetic_image_classification_validation():
    with pytest.raises(ValueError):
        synthetic_image_classification("x", num_classes=1)
    with pytest.raises(ValueError):
        synthetic_image_classification("x", num_classes=10, train_samples=5)


def test_tabular_generator_shapes_and_separability():
    ds = synthetic_tabular_classification(
        num_classes=4, num_features=16, train_samples=256, test_samples=64,
        class_separation=3.0, noise_std=0.5, seed=0,
    )
    assert ds.x_train.shape == (256, 16)
    # With high separation a nearest-centroid rule is nearly perfect.
    centroids = np.stack([ds.x_train[ds.y_train == c].mean(axis=0) for c in range(4)])
    distances = ((ds.x_test[:, None, :] - centroids[None]) ** 2).sum(axis=2)
    accuracy = float((distances.argmin(axis=1) == ds.y_test).mean())
    assert accuracy > 0.9


def test_tabular_generator_validation():
    with pytest.raises(ValueError):
        synthetic_tabular_classification(num_features=0)


def test_load_dataset_by_name():
    ds = load_dataset("svhn", train_samples=64, test_samples=32, image_shape=(3, 8, 8))
    assert ds.name.startswith("svhn")
    with pytest.raises(ValueError, match="unknown dataset"):
        load_dataset("imagenet")


def test_cifar100_like_default_has_100_classes():
    ds = cifar100_like(train_samples=400, test_samples=200, image_shape=(3, 8, 8))
    assert ds.num_classes == 100

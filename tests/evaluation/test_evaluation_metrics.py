"""Unit tests for ensemble-level evaluation metrics."""

import numpy as np
import pytest

from repro.core import Ensemble, EnsembleMember
from repro.evaluation import (
    evaluate_ensemble,
    fit_super_learner_curve,
    incremental_error_curve,
    member_quality_summary,
    oracle_curve,
    pairwise_disagreement,
)


class _FixedModel:
    def __init__(self, correct_mask, num_classes, y):
        # Predicts the true label where mask is True, (label+1) % classes otherwise.
        self.predictions = np.where(correct_mask, y, (y + 1) % num_classes)
        self.num_classes = num_classes

    def predict_proba(self, x, batch_size=None):
        probs = np.full((len(self.predictions), self.num_classes), 0.05)
        probs[np.arange(len(self.predictions)), self.predictions] = 0.9
        return probs / probs.sum(axis=1, keepdims=True)

    def predict(self, x, batch_size=None):
        return self.predictions

    def predict_logits(self, x, batch_size=None):
        return np.log(self.predict_proba(x))

    def parameter_count(self):
        return 0


@pytest.fixture
def setup():
    rng = np.random.default_rng(0)
    n, classes = 40, 4
    y = rng.integers(0, classes, size=n)
    x = np.zeros((n, 3))
    accuracies = [0.9, 0.7, 0.5]
    members = []
    for i, acc in enumerate(accuracies):
        mask = rng.random(n) < acc
        members.append(EnsembleMember(name=f"m{i}", model=_FixedModel(mask, classes, y)))
    return Ensemble(members, num_classes=classes), x, y


def test_evaluate_ensemble_uses_paper_abbreviations(setup):
    ensemble, x, y = setup
    results = evaluate_ensemble(ensemble, x, y, methods=("average", "vote", "oracle"))
    assert set(results) == {"EA", "Vote", "O"}
    assert all(0 <= value <= 100 for value in results.values())


def test_evaluate_ensemble_includes_sl_after_fitting(setup):
    ensemble, x, y = setup
    ensemble.fit_super_learner(x, y, iterations=30)
    results = evaluate_ensemble(ensemble, x, y)
    assert "SL" in results


def test_incremental_error_curve_lengths(setup):
    ensemble, x, y = setup
    curves = incremental_error_curve(ensemble, x, y, sizes=[1, 2, 3], methods=("average", "vote"))
    assert set(curves) == {"average", "vote"}
    assert all(len(series) == 3 for series in curves.values())


def test_incremental_error_curve_first_point_is_single_member(setup):
    ensemble, x, y = setup
    curves = incremental_error_curve(ensemble, x, y, sizes=[1], methods=("average",))
    single = ensemble.subset(1).error_rate(x, y, method="average")
    assert curves["average"][0] == pytest.approx(single)


def test_incremental_error_curve_validates_sizes(setup):
    ensemble, x, y = setup
    with pytest.raises(ValueError):
        incremental_error_curve(ensemble, x, y, sizes=[0])
    with pytest.raises(ValueError):
        incremental_error_curve(ensemble, x, y, sizes=[4])


def test_incremental_error_curve_rejects_super_learner(setup):
    ensemble, x, y = setup
    with pytest.raises(ValueError, match="fit_super_learner_curve"):
        incremental_error_curve(ensemble, x, y, sizes=[1], methods=("super_learner",))


def test_fit_super_learner_curve(setup):
    ensemble, x, y = setup
    series = fit_super_learner_curve(ensemble, x, y, x, y, sizes=[1, 3])
    assert len(series) == 2
    assert all(0 <= value <= 100 for value in series)


def test_oracle_curve_is_monotone_non_increasing(setup):
    """Adding members can only help the oracle (Figure 10's shape)."""
    ensemble, x, y = setup
    series = oracle_curve(ensemble, x, y, sizes=[1, 2, 3])
    assert all(b <= a + 1e-9 for a, b in zip(series, series[1:]))


def test_member_quality_summary_fields(setup):
    ensemble, x, y = setup
    summary = member_quality_summary(ensemble, x, y)
    assert set(summary) == {"mean", "best", "worst", "spread"}
    assert summary["best"] <= summary["mean"] <= summary["worst"]
    assert summary["spread"] == pytest.approx(summary["worst"] - summary["best"])


def test_pairwise_disagreement_positive_for_different_members(setup):
    ensemble, x, y = setup
    assert pairwise_disagreement(ensemble, x) > 0.0

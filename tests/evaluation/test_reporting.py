"""Unit tests for the plain-text reporting helpers used by the benches."""

import pytest

from repro.evaluation import (
    comparison_summary,
    expectation_note,
    format_error_rates,
    format_series,
    format_table,
    format_time_breakdown,
)


def test_format_table_contains_headers_and_rows():
    text = format_table(["name", "value"], [["a", 1.0], ["b", 2.5]], title="demo")
    assert "demo" in text
    assert "name" in text and "value" in text
    assert "1.000" in text and "2.500" in text


def test_format_table_aligns_columns():
    text = format_table(["x", "longer_header"], [["aaaa", 1]])
    lines = text.splitlines()
    assert len(lines[0]) == len(lines[1]) == len(lines[2])


def test_format_series_rows_per_x_value():
    text = format_series({"fd": [1.0, 2.0], "mn": [0.5, 0.7]}, x_values=[10, 20], x_label="size")
    assert text.count("\n") == 3  # header + separator + two rows
    assert "size" in text and "fd" in text and "mn" in text


def test_format_error_rates():
    text = format_error_rates({"EA": 8.5, "Vote": 9.0})
    assert "EA" in text and "8.500" in text


def test_format_time_breakdown_includes_total():
    text = format_time_breakdown({"net-a": 2.0, "net-b": 3.0})
    assert "TOTAL" in text and "5.000" in text


def test_comparison_summary_computes_speedups():
    speedups = comparison_summary(
        {"mothernets": 10.0, "full_data": 60.0, "bagging": 40.0}, reference="mothernets"
    )
    assert speedups == {"full_data": 6.0, "bagging": 4.0}


def test_comparison_summary_missing_reference():
    with pytest.raises(KeyError):
        comparison_summary({"full_data": 1.0}, reference="mothernets")


def test_comparison_summary_zero_reference():
    with pytest.raises(ValueError):
        comparison_summary({"mothernets": 0.0, "full_data": 1.0})


def test_expectation_note_prefixes_lines():
    note = expectation_note(["line one", "line two"])
    assert note.count("[paper]") == 2

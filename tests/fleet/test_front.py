"""FleetFront against an in-process consumer: bitwise parity with the
single-process predictor, sync and async result paths, and validation."""

import time

import numpy as np
import pytest

from repro.api import EnsemblePredictor
from repro.fleet import BrokerFull, FleetConsumer, FleetFront


@pytest.fixture(scope="module")
def fleet(saved_artifact):
    """Front (no local subprocesses, no autoscaler) + one in-process
    consumer sharing the broker object directly."""
    front = FleetFront(
        saved_artifact,
        partitions=2,
        spawn_local=False,
        autoscale=False,
        min_consumers=1,
        max_consumers=1,
    )
    # Long metrics_interval: in-process the consumer shares the front's
    # registry, so the snapshot-and-reset shipping step must not fire.
    consumer = FleetConsumer(
        front.broker,
        saved_artifact,
        consumer_id="inproc",
        workers=1,
        metrics_interval=3600.0,
    ).start()
    yield front
    consumer.close()
    front.close()


@pytest.fixture(scope="module")
def reference(saved_artifact):
    return EnsemblePredictor.load(saved_artifact)


def test_predict_proba_bitwise_equals_single_process(fleet, reference, serial_result):
    x = serial_result.dataset.x_test
    assert np.array_equal(fleet.predict_proba(x, timeout=60), reference.predict_proba(x))
    assert np.array_equal(
        fleet.predict(x[:16], method="vote", timeout=60),
        reference.predict(x[:16], method="vote"),
    )


def test_async_submit_poll_lifecycle(fleet, reference, serial_result):
    x = serial_result.dataset.x_test[:8]
    job_id = fleet.submit(x)
    deadline = time.monotonic() + 60
    status = proba = None
    while time.monotonic() < deadline:
        status, proba, error, want_proba = fleet.poll(job_id)
        assert error is None
        assert want_proba is True
        if status == "done":
            break
        assert status == "pending"
        time.sleep(0.02)
    assert status == "done"
    assert np.array_equal(proba, reference.predict_proba(x))
    # A fetched result is consumed: the id is unknown afterwards.
    assert fleet.poll(job_id)[0] == "unknown"


def test_poll_unknown_job_id(fleet):
    assert fleet.poll("never-submitted")[0] == "unknown"


def test_result_consumes_the_entry(fleet, serial_result):
    x = serial_result.dataset.x_test[:4]
    job_id = fleet.submit(x)
    fleet.result(job_id, timeout=60)
    with pytest.raises(KeyError):
        fleet.result(job_id, timeout=1)


def test_submit_validates_before_publishing(fleet):
    with pytest.raises(ValueError):
        fleet.submit(np.zeros((2, 5)))  # wrong feature count
    with pytest.raises(ValueError):
        fleet.submit(np.zeros((2, 12)), method="nonsense")
    stats = fleet.broker.stats()
    assert stats["depth"] == 0 and stats["inflight"] == 0


def test_constructor_rejects_bad_configuration(saved_artifact):
    with pytest.raises(ValueError):
        FleetFront(saved_artifact, min_consumers=0, spawn_local=False)
    with pytest.raises(ValueError):
        FleetFront(saved_artifact, min_consumers=3, max_consumers=1, spawn_local=False)
    with pytest.raises(ValueError):
        FleetFront(saved_artifact, method="nonsense", spawn_local=False)


def test_broker_full_submit_cleans_up_its_entry(saved_artifact):
    front = FleetFront(
        saved_artifact,
        partitions=1,
        partition_capacity=1,
        spawn_local=False,
        autoscale=False,
    )
    try:
        x = np.zeros((1, 12))
        kept = front.submit(x)  # no consumer attached: stays queued
        with pytest.raises(BrokerFull):
            front.submit(x)
        assert front.poll(kept)[0] == "pending"
        with front._lock:
            assert len(front._entries) == 1
    finally:
        front.close()


def test_healthz_and_info_reflect_the_fleet(fleet):
    health = fleet.healthz()
    assert health["status"] == "ok"
    assert health["mode"] == "queue"
    assert health["consumers"] == 1
    info = fleet.info()
    assert info["mode"] == "queue"
    assert info["queue"]["partitions"] == 2
    assert isinstance(info["queue"]["depth_per_partition"], list)
    assert info["consumers"] == 1
    assert info["local_consumers"] is None  # spawn_local=False
    assert info["autoscaler"] is None
    assert info["job_latency_seconds"]["p99"] >= 0


def test_close_fails_outstanding_futures(saved_artifact):
    import threading

    front = FleetFront(saved_artifact, spawn_local=False, autoscale=False)
    job_id = front.submit(np.zeros((1, 12)))  # nobody will ever answer
    outcome = {}

    def waiter():
        try:
            outcome["result"] = front.result(job_id, timeout=30)
        except Exception as exc:
            outcome["error"] = exc

    thread = threading.Thread(target=waiter)
    thread.start()
    time.sleep(0.2)  # let the waiter block on the future
    front.close()
    thread.join(timeout=30)
    assert not thread.is_alive()
    assert isinstance(outcome.get("error"), RuntimeError)
    # Post-close: the entry is gone and new submissions are refused.
    with pytest.raises(KeyError):
        front.result(job_id, timeout=1)
    with pytest.raises(RuntimeError):
        front.submit(np.zeros((1, 12)))

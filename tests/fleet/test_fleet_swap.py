"""Zero-downtime hot-swap in queue mode: a fleet control broadcast rolls
every consumer's pool while client traffic keeps flowing.

Same kill-style guarantee as ``tests/parallel/test_hot_swap.py``, one tier
up: during :meth:`FleetFront.swap` no request is dropped and every response
is bitwise-equal to a cold-started predictor on either the old or the new
generation — never a mix within one request — across *multiple* consumer
processes converging at their own pace.
"""

from __future__ import annotations

import shutil
import threading
import time

import numpy as np
import pytest

from repro.api import EnsemblePredictor, run_experiment
from repro.core.artifact_store import ArtifactStore
from repro.fleet import FleetConsumer, FleetFront


@pytest.fixture(scope="module")
def swap_store(saved_artifact, experiment_dict, tmp_path_factory):
    root = tmp_path_factory.mktemp("fleet-swap") / "store"
    shutil.copytree(saved_artifact, root)
    store = ArtifactStore.open(root)
    fresh = run_experiment(
        experiment_dict(dataset=dict(experiment_dict()["dataset"], seed=6))
    )
    generation = store.add_generation(fresh.run, parent_generation=0)
    assert generation == 1
    return store


@pytest.fixture(scope="module")
def refs(swap_store, serial_result):
    probe = serial_result.dataset.x_test
    ref0 = EnsemblePredictor.load(swap_store.root, generation=0).predict_proba(probe)
    ref1 = EnsemblePredictor.load(swap_store.root, generation=1).predict_proba(probe)
    assert not np.array_equal(ref0, ref1)
    return probe, ref0, ref1


def test_fleet_swap_under_fire_converges_all_consumers(swap_store, refs):
    probe, ref0, ref1 = refs
    swap_store.promote(0)
    front = FleetFront(
        swap_store.root,
        partitions=2,
        spawn_local=False,
        autoscale=False,
        min_consumers=1,
        max_consumers=2,
    )
    consumers = [
        FleetConsumer(
            front.broker,
            swap_store.root,
            consumer_id=f"c{i}",
            workers=1,
            metrics_interval=3600.0,
        ).start()
        for i in range(2)
    ]
    try:
        assert front.generation == 0
        stop = threading.Event()
        failures = []
        counts = {"old": 0, "new": 0}
        lock = threading.Lock()

        def hammer(tid):
            i = 0
            while not stop.is_set():
                start = (tid * 5 + i) % 40
                size = 1 + ((tid + i) % 5)
                batch = probe[start : start + size]
                try:
                    out = front.predict_proba(batch, timeout=60)
                except Exception as exc:
                    failures.append(f"thread {tid} request failed: {exc!r}")
                    return
                rows = batch.shape[0]
                if np.array_equal(out, ref0[start : start + rows]):
                    with lock:
                        counts["old"] += 1
                elif np.array_equal(out, ref1[start : start + rows]):
                    with lock:
                        counts["new"] += 1
                else:
                    failures.append(
                        f"thread {tid} got an answer matching neither "
                        f"generation for rows {start}:{start + rows}"
                    )
                    return
                i += 1

        threads = [
            threading.Thread(target=hammer, args=(tid,)) for tid in range(3)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.4)  # traffic flowing on generation 0
        swap_store.promote(1)
        result = front.swap(timeout=120)
        time.sleep(0.4)  # traffic flowing on generation 1
        stop.set()
        for thread in threads:
            thread.join(timeout=60)
        assert all(not thread.is_alive() for thread in threads)
        assert not failures, failures[:3]
        assert result["status"] == "ok"
        assert result["previous_generation"] == 0
        assert result["generation"] == 1
        assert result["consumers_acked"] == 2
        assert counts["old"] > 0 and counts["new"] > 0, counts
        assert front.generation == 1
        assert front.info()["generation"] == 1
        assert front.healthz()["generation"] == 1
        for consumer in consumers:
            assert consumer.pool.generation == 1
        status = front.broker.control_status()
        assert {"c0", "c1"} <= set(status["acks"])
        assert all(ack["ok"] for ack in status["acks"].values())
        # Post-swap the whole fleet answers purely from the new generation.
        np.testing.assert_array_equal(
            front.predict_proba(probe, timeout=60), ref1
        )
    finally:
        for consumer in consumers:
            consumer.close()
        front.close()


def test_fleet_swap_without_pointer_move_is_a_noop(swap_store):
    swap_store.promote(0)
    front = FleetFront(
        swap_store.root, partitions=1, spawn_local=False, autoscale=False
    )
    try:
        result = front.swap()
        assert result["status"] == "noop"
        assert result["consumers_acked"] == 0
        assert front.generation == 0
    finally:
        front.close()


def test_consumer_attaching_late_acks_without_rolling(swap_store, refs):
    """A consumer that joins after a swap broadcast loads the promoted
    CURRENT at construction, so it acks the pending control revision on
    start() instead of rolling a pool that is already on the right
    generation (the front would otherwise wait on it forever)."""
    probe, _, ref1 = refs
    swap_store.promote(1)
    front = FleetFront(
        swap_store.root, partitions=1, spawn_local=False, autoscale=False
    )
    try:
        revision = front.broker.post_control({"op": "swap", "generation": 1})
        consumer = FleetConsumer(
            front.broker,
            swap_store.root,
            consumer_id="late",
            workers=1,
            metrics_interval=3600.0,
        ).start()
        try:
            acks = front.broker.control_status()["acks"]
            assert acks["late"]["revision"] == revision
            assert acks["late"]["ok"] is True
            assert consumer.pool.generation == 1
            assert consumer.pool.info()["swaps"] == 0  # never rolled
            np.testing.assert_array_equal(
                front.predict_proba(probe[:8], timeout=60), ref1[:8]
            )
        finally:
            consumer.close()
    finally:
        front.close()

"""Shared fixtures for the queue-backed serving tier tests.

One tiny tabular MLP ensemble is trained serially once per session and saved
as an artifact; broker/autoscaler tests don't need it, but the front,
chaos, and CLI tests all serve it (and compare against the single-process
``EnsemblePredictor`` for bitwise parity).
"""

from __future__ import annotations

import pytest

from repro.api import run_experiment, save_ensemble_run


def fleet_experiment_dict(**overrides):
    base = {
        "name": "fleet-tiny",
        "dataset": {
            "name": "tabular",
            "train_samples": 256,
            "test_samples": 64,
            "num_classes": 4,
            "num_features": 12,
            "class_separation": 2.0,
            "seed": 5,
        },
        "members": {
            "family": "mlp",
            "count": 4,
            "input_features": 12,
            "num_classes": 4,
            "base_width": 10,
            "seed": 1,
        },
        "approach": "mothernets",
        "training": {"max_epochs": 3, "batch_size": 64, "learning_rate": 0.1},
        "trainer": {"tau": 0.3},
        "seed": 0,
        "super_learner": True,
    }
    for key, value in overrides.items():
        base[key] = value
    return base


@pytest.fixture(scope="session")
def experiment_dict():
    return fleet_experiment_dict


@pytest.fixture(scope="session")
def serial_result():
    return run_experiment(fleet_experiment_dict())


@pytest.fixture(scope="session")
def saved_artifact(serial_result, tmp_path_factory):
    path = tmp_path_factory.mktemp("fleet-artifact") / "artifact"
    save_ensemble_run(serial_result.run, path)
    return path

"""End-to-end ``python -m repro serve --mode queue``: the HTTP front over
the broker + a local consumer subprocess, sync and async request paths,
queue-aware health/info, and clean SIGTERM shutdown."""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.api import EnsemblePredictor

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def server(saved_artifact):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env["OMP_NUM_THREADS"] = "1"
    env.pop("REPRO_FAULTS", None)
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--artifact",
            str(saved_artifact),
            "--mode",
            "queue",
            "--port",
            "0",
            "--workers",
            "1",
            "--min-consumers",
            "1",
            "--max-consumers",
            "2",
            "--partitions",
            "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        banner = json.loads(proc.stdout.readline())
        assert banner["event"] == "serving"
        yield proc, banner
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)


def _get(url, timeout=30):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def _post(url, payload, timeout=60):
    request = urllib.request.Request(
        url + "/predict",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def test_banner_announces_version_mode_and_broker(server):
    _, banner = server
    assert banner["version"] == repro.__version__
    assert banner["mode"] == "queue"
    host, _, port = banner["broker"].rpartition(":")
    assert host and port.isdigit()


def test_sync_predict_bitwise_equals_single_process(server, saved_artifact, serial_result):
    _, banner = server
    reference = EnsemblePredictor.load(saved_artifact)
    x = serial_result.dataset.x_test[:12]
    status, out = _post(banner["url"], {"inputs": x.tolist(), "proba": True})
    assert status == 200
    assert np.array_equal(np.asarray(out["probabilities"]), reference.predict_proba(x))
    status, out = _post(banner["url"], {"inputs": x.tolist(), "method": "vote"})
    assert out["predictions"] == reference.predict(x, method="vote").tolist()


def test_async_predict_and_result_polling(server, saved_artifact, serial_result):
    _, banner = server
    url = banner["url"]
    reference = EnsemblePredictor.load(saved_artifact)
    x = serial_result.dataset.x_test[:6]
    status, submitted = _post(url, {"inputs": x.tolist(), "proba": True, "async": True})
    assert status == 202
    assert submitted["status"] == "pending"
    assert submitted["result_url"] == f"/result/{submitted['job_id']}"

    deadline = time.monotonic() + 60
    result = None
    while time.monotonic() < deadline:
        status, result = _get(url + submitted["result_url"])
        if status == 200:
            break
        assert status == 202 and result["status"] == "pending"
        time.sleep(0.05)
    assert status == 200
    assert np.array_equal(np.asarray(result["probabilities"]), reference.predict_proba(x))

    # The result was consumed by the successful fetch: now it is unknown.
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(url + submitted["result_url"])
    assert excinfo.value.code == 404


def test_result_unknown_job_id_is_404(server):
    _, banner = server
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(banner["url"] + "/result/no-such-job")
    assert excinfo.value.code == 404


def test_healthz_reports_queue_state(server):
    _, banner = server
    status, health = _get(banner["url"] + "/healthz")
    assert status == 200
    assert health["status"] == "ok"
    assert health["mode"] == "queue"
    assert health["consumers"] >= 1
    assert health["queue_depth"] >= 0
    assert "redeliveries" in health
    assert health["local_consumers"]["running"] >= 1


def test_info_reports_uptime_and_queue_stats(server):
    _, banner = server
    status, info = _get(banner["url"] + "/info")
    assert status == 200
    assert info["mode"] == "queue"
    assert info["uptime_seconds"] > 0
    queue = info["queue"]
    assert queue["partitions"] == 2
    assert len(queue["depth_per_partition"]) == 2
    assert "oldest_job_age_seconds" in queue
    assert info["local_consumers"]["desired"] >= 1
    assert info["autoscaler"]["max_consumers"] == 2
    assert "p99" in info["job_latency_seconds"]


def test_fleet_metrics_exposed_on_the_front(server):
    """Consumer-side series (shipped with acks) and broker series must both
    appear in the front's /metrics exposition."""
    _, banner = server
    _post(banner["url"], {"inputs": [[0.0] * 12]})
    # Consumers throttle metric shipping (default 1s); a second request after
    # the interval carries the first window's delta snapshot.
    time.sleep(1.2)
    _post(banner["url"], {"inputs": [[0.0] * 12]})
    with urllib.request.urlopen(banner["url"] + "/metrics", timeout=30) as response:
        body = response.read().decode("utf-8")
    assert "repro_fleet_queue_depth" in body
    assert "repro_fleet_consumers 1" in body
    assert "# TYPE repro_fleet_redeliveries_total counter" in body
    assert "repro_fleet_job_latency_seconds_count" in body
    # Shipped from the consumer process and merged at the front:
    assert 'repro_fleet_consumed_jobs_total{status="ok"}' in body


def test_queue_serve_shuts_down_cleanly_on_sigterm(server):
    proc, _ = server
    assert proc.poll() is None
    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=120)
    assert proc.returncode == 0
    assert json.loads(out.strip().splitlines()[-1]) == {"event": "stopped"}

"""Unit tests for the load-aware autoscaler: burst response, hysteresis,
cooldown discipline, and bounds — all with a synthetic clock and signals."""

import math

import pytest

from repro.fleet.autoscaler import Autoscaler, AutoscaleSignals


class Harness:
    """Synthetic fleet: injectable clock + signals, counting scale calls."""

    def __init__(self, consumers=1, min_consumers=1, max_consumers=3, **kwargs):
        self.now = 0.0
        self.consumers = consumers
        self.queue_depth = 0
        self.p99 = float("nan")
        self.actions = []
        kwargs.setdefault("cooldown_seconds", 10.0)
        self.scaler = Autoscaler(
            min_consumers=min_consumers,
            max_consumers=max_consumers,
            get_signals=lambda: AutoscaleSignals(
                queue_depth=self.queue_depth,
                p99_seconds=self.p99,
                consumers=self.consumers,
            ),
            scale_up=self._up,
            scale_down=self._down,
            clock=lambda: self.now,
            **kwargs,
        )

    def _up(self):
        self.consumers += 1

    def _down(self):
        self.consumers -= 1

    def tick(self, at=None):
        if at is not None:
            self.now = at
        action = self.scaler.tick()
        if action is not None:
            self.actions.append((self.now, action))
        return action


def test_burst_scales_min_to_max_and_back_down():
    h = Harness(consumers=1, min_consumers=1, max_consumers=3)
    # Burst: deep backlog drives consumers 1 -> 3, one step per cooldown.
    h.queue_depth = 100
    assert h.tick(at=0.0) == "up"
    assert h.tick(at=10.0) == "up"
    assert h.consumers == 3
    # At max: still hot, but capped.
    assert h.tick(at=20.0) is None
    # Burst over: drain back down to min, again one step per cooldown.
    h.queue_depth = 0
    h.p99 = float("nan")
    assert h.tick(at=30.0) == "down"
    assert h.tick(at=40.0) == "down"
    assert h.consumers == 1
    # At min: stays put.
    assert h.tick(at=50.0) is None
    assert [a for _, a in h.actions] == ["up", "up", "down", "down"]


def test_cooldown_blocks_actions_inside_the_window():
    h = Harness(consumers=1, max_consumers=5)
    h.queue_depth = 100
    assert h.tick(at=0.0) == "up"
    for t in (1.0, 5.0, 9.9):
        assert h.tick(at=t) is None, f"acted inside cooldown at t={t}"
    assert h.tick(at=10.0) == "up"
    # No two actions ever closer than the cooldown.
    gaps = [b[0] - a[0] for a, b in zip(h.actions, h.actions[1:])]
    assert all(gap >= h.scaler.cooldown_seconds for gap in gaps)


def test_no_oscillation_between_thresholds():
    """A load level inside the hysteresis band (above scale-down, below
    scale-up) must produce no action in either direction."""
    h = Harness(consumers=2, up_queue_depth=4.0, down_queue_depth=1.0)
    h.queue_depth = 4  # 2.0 per consumer: neither > 4.0 nor <= 1.0
    h.p99 = 1.0  # between down (0.5) and up (2.0)
    for t in (0.0, 15.0, 30.0, 45.0):
        assert h.tick(at=t) is None
    assert h.consumers == 2 and h.actions == []


def test_scale_up_on_hot_p99_alone():
    h = Harness(consumers=1)
    h.queue_depth = 0
    h.p99 = 5.0
    assert h.tick(at=0.0) == "up"


def test_scale_down_requires_backlog_and_latency_both_cold():
    h = Harness(consumers=2)
    h.queue_depth = 0
    h.p99 = 5.0  # latency still hot: must not scale down ...
    assert h.tick(at=0.0) == "up"  # ... it scales UP (p99 over threshold)
    h = Harness(consumers=2, max_consumers=2)
    h.queue_depth = 0
    h.p99 = 1.0  # not hot enough to go up, not cold enough to go down
    assert h.tick(at=0.0) is None
    h.p99 = float("nan")  # empty window counts as cold
    assert h.tick(at=1.0) == "down"


def test_backlog_is_normalised_per_consumer():
    h = Harness(consumers=4, max_consumers=8, up_queue_depth=4.0)
    h.queue_depth = 16  # 4.0 per consumer: not strictly above the threshold
    assert h.tick(at=0.0) is None
    h.queue_depth = 17
    assert h.tick(at=1.0) == "up"


def test_constructor_enforces_hysteresis_and_bounds():
    def build(**kwargs):
        defaults = dict(
            min_consumers=1,
            max_consumers=2,
            get_signals=lambda: AutoscaleSignals(0, math.nan, 1),
            scale_up=lambda: None,
            scale_down=lambda: None,
        )
        defaults.update(kwargs)
        return Autoscaler(**defaults)

    with pytest.raises(ValueError):
        build(min_consumers=0)
    with pytest.raises(ValueError):
        build(min_consumers=3, max_consumers=2)
    with pytest.raises(ValueError):
        build(up_queue_depth=1.0, down_queue_depth=1.0)
    with pytest.raises(ValueError):
        build(up_p99_seconds=0.5, down_p99_seconds=0.5)
    with pytest.raises(ValueError):
        build(interval=0.0)


def test_state_reports_configuration_and_last_action():
    h = Harness(consumers=1)
    state = h.scaler.state()
    assert state["min_consumers"] == 1
    assert state["max_consumers"] == 3
    assert state["last_action"] is None
    h.queue_depth = 100
    h.tick(at=0.0)
    assert h.scaler.state()["last_action"] == "up"

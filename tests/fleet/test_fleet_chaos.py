"""Chaos test for the queue tier: a fleet consumer is crash-injected
(SIGKILL, no cleanup) mid-stream; the broker must redeliver its jobs to the
surviving consumer and every request must be answered bitwise identically to
the single-process predictor — zero dropped requests.

The consumers run as real ``repro fleet-worker`` subprocesses because the
``crash`` fault action kills its whole process, exactly like an OOM kill.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api import EnsemblePredictor
from repro.fleet import FleetFront

REPO_ROOT = Path(__file__).resolve().parents[2]


def _spawn_worker(broker_address, artifact, consumer_id, faults=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env["OMP_NUM_THREADS"] = "1"
    env.pop("REPRO_FAULTS", None)
    if faults is not None:
        env["REPRO_FAULTS"] = faults
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "fleet-worker",
            "--broker",
            f"{broker_address[0]}:{broker_address[1]}",
            "--artifact",
            str(artifact),
            "--consumer-id",
            consumer_id,
            "--workers",
            "1",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    banner = json.loads(proc.stdout.readline())
    assert banner["event"] == "fleet-worker"
    assert banner["consumer"] == consumer_id
    return proc


def test_consumer_crash_redelivers_with_zero_dropped_requests(
    saved_artifact, serial_result
):
    reference = EnsemblePredictor.load(saved_artifact)
    x = serial_result.dataset.x_test

    front = FleetFront(
        saved_artifact,
        partitions=4,
        visibility_timeout=1.5,
        spawn_local=False,
        autoscale=False,
        min_consumers=1,
        max_consumers=2,
    )
    chaos = survivor = None
    try:
        # The chaos consumer answers 3 jobs, then SIGKILLs itself on its 4th
        # lease — while holding that lease, the worst moment to die.
        chaos = _spawn_worker(
            front.broker_address,
            saved_artifact,
            "chaos",
            faults="fleet_consume_crash:consumer=chaos:after=3",
        )
        survivor = _spawn_worker(front.broker_address, saved_artifact, "survivor")
        deadline = time.monotonic() + 60
        while front.broker.consumer_count() < 2 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert front.broker.consumer_count() == 2

        # 16 jobs round-robin over 4 partitions: the chaos consumer owns two
        # of them, so it sees ~8 jobs and cannot survive the stream.
        batches = [x[i * 4 : i * 4 + 4] for i in range(16)]
        job_ids = [front.submit(batch) for batch in batches]
        results = [front.result(job_id, timeout=120) for job_id in job_ids]

        # Zero dropped requests, all bitwise identical.
        for batch, proba in zip(batches, results):
            assert np.array_equal(proba, reference.predict_proba(batch))

        # The crash actually happened and the broker actually redelivered.
        assert chaos.wait(timeout=30) == -signal.SIGKILL
        assert front.broker.redeliveries() >= 1
        stats = front.broker.stats()
        assert stats["depth"] == 0 and stats["inflight"] == 0
    finally:
        for proc in (chaos, survivor):
            if proc is not None and proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in (chaos, survivor):
            if proc is not None:
                try:
                    proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=10)
        front.close()


def test_fleet_worker_drains_cleanly_on_sigterm(saved_artifact, serial_result):
    front = FleetFront(
        saved_artifact,
        partitions=2,
        spawn_local=False,
        autoscale=False,
    )
    worker = None
    try:
        worker = _spawn_worker(front.broker_address, saved_artifact, "drainer")
        proba = front.predict_proba(serial_result.dataset.x_test[:4], timeout=60)
        assert proba.shape == (4, 4)
        worker.send_signal(signal.SIGTERM)
        out, _ = worker.communicate(timeout=60)
        assert worker.returncode == 0
        assert json.loads(out.strip().splitlines()[-1]) == {
            "event": "stopped",
            "consumer": "drainer",
        }
        # A clean drain detaches from the broker.
        assert front.broker.consumer_count() == 0
    finally:
        if worker is not None and worker.poll() is None:
            worker.kill()
            worker.wait(timeout=10)
        front.close()

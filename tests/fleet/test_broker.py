"""Unit tests for the in-process partitioned broker: delivery semantics,
partition assignment, redelivery clocks, and the cross-process manager."""

import time

import pytest

from repro.fleet.broker import (
    BrokerFull,
    InProcBroker,
    connect_broker,
    serve_broker,
)


@pytest.fixture
def broker():
    b = InProcBroker(
        partitions=4,
        partition_capacity=8,
        visibility_timeout=0.4,
        max_deliveries=3,
        consumer_deadline=30.0,
        sweep_interval=0.05,
    )
    yield b
    b.close()


def _wait_for(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def test_publish_lease_ack_roundtrip(broker):
    broker.attach("c1")
    job_id = broker.publish({"n": 1})
    job = broker.lease("c1", timeout=1.0)
    assert job is not None
    assert job.job_id == job_id
    assert job.payload == {"n": 1}
    assert job.deliveries == 1
    assert broker.ack("c1", job.job_id, result="r") is True
    done = broker.poll_completed(timeout=1.0)
    assert [c.job_id for c in done] == [job_id]
    assert done[0].result == "r"
    assert done[0].error is None
    assert done[0].deliveries == 1


def test_publish_round_robins_partitions(broker):
    for _ in range(8):
        broker.publish({"x": 0})
    assert broker.stats()["depth_per_partition"] == [2, 2, 2, 2]


def test_publish_caller_supplied_job_id(broker):
    assert broker.publish({}, job_id="mine") == "mine"


def test_broker_full_backpressure(broker):
    for _ in range(4 * 8):
        broker.publish({})
    with pytest.raises(BrokerFull):
        broker.publish({})
    # A full partition is skipped when another has room.
    broker.attach("c1")
    job = broker.lease("c1", timeout=1.0)
    broker.ack("c1", job.job_id, result=None)
    broker.publish({})  # no longer raises


def test_attach_rebalances_round_robin(broker):
    assert broker.attach("c1") == [0, 1, 2, 3]
    assert broker.attach("c2") == [1, 3]
    assert broker.stats()["consumers"] == {"c1": [0, 2], "c2": [1, 3]}
    broker.detach("c1")
    assert broker.stats()["consumers"] == {"c2": [0, 1, 2, 3]}


def test_lease_attaches_unknown_consumer_implicitly(broker):
    broker.publish({"n": 1})
    job = broker.lease("newcomer", timeout=1.0)
    assert job is not None
    assert broker.consumer_count() == 1


def test_visibility_timeout_redelivers_unacked_job(broker):
    broker.attach("c1")
    job_id = broker.publish({"n": 1})
    first = broker.lease("c1", timeout=1.0)
    assert first.deliveries == 1
    # Never ack: the sweeper must requeue it after the visibility window.
    assert _wait_for(lambda: broker.redeliveries() >= 1)
    second = broker.lease("c1", timeout=2.0)
    assert second is not None
    assert second.job_id == job_id
    assert second.deliveries == 2
    assert broker.ack("c1", job_id, result="late but fine") is True
    done = broker.poll_completed(timeout=1.0)
    assert [c.job_id for c in done] == [job_id]


def test_dead_consumer_partitions_reassigned_to_survivor():
    broker = InProcBroker(
        partitions=4,
        partition_capacity=32,
        visibility_timeout=0.3,
        consumer_deadline=0.5,
        sweep_interval=0.05,
    )
    try:
        broker.attach("dead")
        broker.attach("alive")
        published = {broker.publish({"i": i}) for i in range(8)}
        # "dead" leases one job and never calls in again: its in-flight job
        # must redeliver (visibility timeout) and its queued partitions must
        # reassign to "alive" (consumer deadline).
        assert broker.lease("dead", timeout=1.0) is not None
        completed = {}
        deadline = time.monotonic() + 15.0
        while len(completed) < len(published) and time.monotonic() < deadline:
            job = broker.lease("alive", timeout=0.2)
            if job is not None:
                broker.ack("alive", job.job_id, result=job.payload["i"])
            for done in broker.poll_completed(timeout=0.05):
                completed[done.job_id] = done
        assert set(completed) == published
        assert all(c.error is None for c in completed.values())
        assert broker.redeliveries() >= 1
        assert broker.consumer_count() == 1  # "dead" was reaped
    finally:
        broker.close()


def test_nack_redelivers_then_fails_after_max_deliveries(broker):
    broker.attach("c1")
    job_id = broker.publish({"n": 1})
    for expected_delivery in (1, 2, 3):
        job = broker.lease("c1", timeout=1.0)
        assert job.job_id == job_id
        assert job.deliveries == expected_delivery
        broker.nack("c1", job_id, "boom")
    assert broker.lease("c1", timeout=0.1) is None
    done = broker.poll_completed(timeout=1.0)
    assert len(done) == 1
    assert done[0].result is None
    assert "failed after 3 deliveries" in done[0].error
    assert "boom" in done[0].error


def test_duplicate_execution_first_ack_wins(broker):
    broker.attach("c1")
    broker.attach("c2")
    job_id = broker.publish({}, job_id="dup")
    holder = broker.lease("c1", timeout=1.0) or broker.lease("c2", timeout=1.0)
    assert holder.job_id == "dup"
    # Lease expires; the job is redelivered and a second consumer runs it too.
    assert _wait_for(lambda: broker.redeliveries() >= 1)
    second = broker.lease("c1", timeout=2.0) or broker.lease("c2", timeout=2.0)
    assert second.job_id == "dup"
    assert broker.ack("c2", job_id, result="second-execution") is True
    assert broker.ack("c1", job_id, result="slow-first-execution") is False
    done = broker.poll_completed(timeout=1.0)
    assert len(done) == 1
    assert done[0].result == "second-execution"


def test_ack_pulls_requeued_duplicate_out_of_the_queue(broker):
    broker.attach("c1")
    job_id = broker.publish({})
    broker.lease("c1", timeout=1.0)
    # Visibility expires: the job goes back on the queue while the original
    # (slow, not dead) consumer is still computing it.
    assert _wait_for(lambda: broker.redeliveries() >= 1)
    assert broker.ack("c1", job_id, result="done") is True
    # The requeued duplicate must not be handed out afterwards.
    assert broker.lease("c1", timeout=0.2) is None
    assert len(broker.poll_completed(timeout=1.0)) == 1


def test_stats_reports_depth_and_oldest_age(broker):
    assert broker.stats()["oldest_job_age_seconds"] is None
    broker.publish({})
    time.sleep(0.05)
    stats = broker.stats()
    assert stats["depth"] == 1
    assert sum(stats["depth_per_partition"]) == 1
    assert stats["oldest_job_age_seconds"] >= 0.05
    assert stats["inflight"] == 0


def test_close_fails_queued_and_inflight_jobs(broker):
    broker.attach("c1")
    queued = broker.publish({})
    leased = broker.publish({})
    # Lease until we hold one of the two (partition order is not ours).
    job = broker.lease("c1", timeout=1.0)
    broker.close()
    done = {c.job_id: c for c in broker.poll_completed(timeout=1.0)}
    assert set(done) == {queued, leased}
    assert all("broker closed" in c.error for c in done.values())
    with pytest.raises(RuntimeError):
        broker.publish({})
    assert job is not None


def test_served_broker_roundtrip_through_manager_proxy(broker):
    address, stop = serve_broker(broker, port=0, authkey="test-key")
    try:
        proxy = connect_broker(address, authkey="test-key")
        job_id = proxy.publish({"via": "proxy"})
        job = proxy.lease("remote", timeout=1.0)
        assert job.job_id == job_id
        assert job.payload == {"via": "proxy"}
        assert proxy.ack("remote", job.job_id, result=[1, 2, 3]) is True
        # The completion landed in the *served* broker object.
        done = broker.poll_completed(timeout=1.0)
        assert [c.result for c in done] == [[1, 2, 3]]
        assert proxy.stats()["consumers"] == {"remote": [0, 1, 2, 3]}
    finally:
        stop()


def test_connect_broker_rejects_wrong_authkey(broker):
    address, stop = serve_broker(broker, port=0, authkey="right")
    try:
        with pytest.raises(Exception):
            connect_broker(address, authkey="wrong")
    finally:
        stop()

"""Structured event logging: JSON line format, text fallback, configuration
idempotence, and the get_logger delegation from repro.utils.logging."""

import io
import json
import logging

import pytest

import repro.obs.events as events
from repro.obs.events import (
    EVENTS_LOGGER_NAME,
    JsonLineFormatter,
    TextEventFormatter,
    configure_logging,
    enable_events,
    log_event,
)


@pytest.fixture()
def capture():
    """Route the repro root handler into a buffer for the duration of a test,
    then restore the unconfigured state."""
    stream = io.StringIO()
    configure_logging(fmt="json", stream=stream, force=True)
    enable_events()
    yield stream
    events._configured_fmt = None
    logging.getLogger(EVENTS_LOGGER_NAME).setLevel(logging.NOTSET)
    configure_logging(force=True)


def _lines(stream):
    return [line for line in stream.getvalue().splitlines() if line]


def test_log_event_emits_one_json_object_per_line(capture):
    log_event("serve.worker_died", worker=0, exitcode=-9)
    log_event("serve.worker_respawned", worker=0, attempt=1)
    lines = _lines(capture)
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first["event"] == "serve.worker_died"
    assert first["worker"] == 0
    assert first["exitcode"] == -9
    assert first["level"] == "info"
    assert first["logger"] == EVENTS_LOGGER_NAME
    assert isinstance(first["ts"], float)
    second = json.loads(lines[1])
    assert second["event"] == "serve.worker_respawned"
    assert second["attempt"] == 1


def test_plain_logger_records_render_as_json_messages(capture):
    logger = logging.getLogger("repro.test.module")
    logger.warning("something %s", "happened")
    payload = json.loads(_lines(capture)[0])
    assert payload["message"] == "something happened"
    assert payload["level"] == "warning"
    assert "event" not in payload


def test_non_jsonable_fields_are_stringified(capture):
    log_event("test.event", path=object())
    payload = json.loads(_lines(capture)[0])
    assert isinstance(payload["path"], str)


def test_events_below_logger_level_are_dropped(capture):
    logging.getLogger(EVENTS_LOGGER_NAME).setLevel(logging.ERROR)
    log_event("test.suppressed", a=1)
    assert _lines(capture) == []
    log_event("test.error", level=logging.ERROR, a=1)
    assert json.loads(_lines(capture)[0])["event"] == "test.error"


def test_text_formatter_renders_fields_as_key_value_pairs():
    record = logging.LogRecord(
        EVENTS_LOGGER_NAME, logging.INFO, __file__, 1, "my.event", (), None
    )
    record.repro_event = "my.event"
    record.repro_fields = {"worker": 3, "status": "ok"}
    rendered = TextEventFormatter().format(record)
    assert "my.event" in rendered
    assert "worker=3" in rendered
    assert "status=ok" in rendered


def test_json_formatter_includes_exceptions():
    try:
        raise RuntimeError("boom")
    except RuntimeError:
        import sys

        record = logging.LogRecord(
            "repro.x", logging.ERROR, __file__, 1, "failed", (), sys.exc_info()
        )
    payload = json.loads(JsonLineFormatter().format(record))
    assert payload["message"] == "failed"
    assert "RuntimeError: boom" in payload["exception"]


def test_configure_logging_is_idempotent_without_force(capture):
    root = logging.getLogger("repro")
    handlers_before = list(root.handlers)
    configure_logging(fmt="text")  # ignored: already configured
    assert list(root.handlers) == handlers_before
    log_event("still.json", x=1)
    assert json.loads(_lines(capture)[0])["event"] == "still.json"


def test_get_logger_delegates_and_namespaces():
    from repro.utils.logging import get_logger

    assert get_logger("nn.training").name == "repro.nn.training"
    assert get_logger("repro.parallel").name == "repro.parallel"
    # The shared root handler is installed exactly once.
    assert len(logging.getLogger("repro").handlers) == 1

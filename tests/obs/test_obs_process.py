"""Process-level gauges: populated on demand, skipped when disabled."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.process import update_process_metrics


def test_update_populates_process_gauges():
    registry = MetricsRegistry(enabled=True)
    update_process_metrics(registry)
    cpu = registry.get("repro_process_cpu_seconds_total")
    assert cpu is not None and cpu.value >= 0.0
    uptime = registry.get("repro_process_uptime_seconds")
    assert uptime is not None and uptime.value >= 0.0
    rss = registry.get("repro_process_resident_memory_bytes")
    if rss is not None:  # Linux /proc (or getrusage fallback) available
        assert rss.value > 1024 * 1024  # a Python process is at least a MiB


def test_update_is_a_noop_when_disabled():
    registry = MetricsRegistry(enabled=False)
    update_process_metrics(registry)
    assert registry.get("repro_process_cpu_seconds_total") is None

"""Unit tests for bucket-interpolated histogram quantiles
(`Histogram.quantile` / `quantile_from_counts`)."""

import math

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry, quantile_from_counts


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


def test_empty_histogram_is_nan():
    assert math.isnan(quantile_from_counts((1.0, 2.0), [0, 0, 0], 0.5))


def test_first_bucket_interpolates_from_zero():
    # 4 observations, all <= 1.0: the median sits at rank 2 of 4, i.e. half
    # way through a bucket spanning (0, 1].
    assert quantile_from_counts((1.0, 2.0, 4.0), [4, 0, 0, 0], 0.5) == 0.5


def test_interpolation_within_an_interior_bucket():
    # Bounds (1, 2, 4): 2 observations in (0,1], 2 in (2,4].  q=0.75 -> rank
    # 3 -> halfway through the (2,4] bucket -> 3.0.
    assert quantile_from_counts((1.0, 2.0, 4.0), [2, 0, 2, 0], 0.75) == 3.0


def test_bucket_boundaries_are_exact():
    counts = [1, 1, 1, 1]  # one observation per bucket incl. +Inf
    bounds = (1.0, 2.0, 4.0)
    assert quantile_from_counts(bounds, counts, 0.25) == 1.0
    assert quantile_from_counts(bounds, counts, 0.5) == 2.0
    assert quantile_from_counts(bounds, counts, 0.75) == 4.0


def test_rank_in_inf_bucket_clamps_to_highest_finite_bound():
    assert quantile_from_counts((1.0, 2.0, 4.0), [0, 0, 0, 5], 0.99) == 4.0
    # Even a mixed distribution clamps once the rank crosses into +Inf.
    assert quantile_from_counts((1.0, 2.0, 4.0), [1, 0, 0, 9], 0.99) == 4.0


def test_quantile_monotone_in_q():
    counts = [3, 5, 2, 1]
    bounds = (0.5, 1.0, 5.0)
    values = [quantile_from_counts(bounds, counts, q / 10) for q in range(11)]
    assert values == sorted(values)


def test_invalid_q_rejected():
    with pytest.raises(ValueError):
        quantile_from_counts((1.0,), [1, 0], -0.1)
    with pytest.raises(ValueError):
        quantile_from_counts((1.0,), [1, 0], 1.5)


def test_histogram_quantile_end_to_end(registry):
    h = Histogram("h_test", "test", buckets=(0.1, 1.0, 10.0), registry=registry)
    assert math.isnan(h.quantile(0.5))
    for value in (0.05, 0.05, 0.5, 0.5, 5.0, 50.0):
        h.observe(value)
    assert h.bucket_counts() == [2, 2, 1, 1]
    # Median: rank 3 of 6 -> middle of the (0.1, 1.0] bucket.
    assert h.quantile(0.5) == pytest.approx(0.55)
    # p100 lands in +Inf: clamped to the top finite bound.
    assert h.quantile(1.0) == 10.0


def test_labelled_histogram_quantile_via_children(registry):
    h = Histogram(
        "h_labelled", "test", labelnames=("path",), buckets=(1.0,), registry=registry
    )
    h.labels("/a").observe(0.5)
    assert h.labels("/a").quantile(0.5) == 0.5
    with pytest.raises(ValueError):
        h.quantile(0.5)  # parent of a labelled metric has no single series

"""Metrics core: counter/gauge/histogram semantics, labels, registry
behaviour (get-or-create, enable/disable, reset), and thread safety."""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)


@pytest.fixture()
def registry():
    return MetricsRegistry(enabled=True)


def test_counter_increments_and_rejects_decrease(registry):
    counter = registry.counter("test_total", "help")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_set_inc_dec(registry):
    gauge = registry.gauge("test_gauge", "help")
    gauge.set(10)
    gauge.inc(2)
    gauge.dec(0.5)
    assert gauge.value == 11.5


def test_histogram_buckets_sum_count(registry):
    hist = registry.histogram("test_seconds", "help", buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 5.0, 50.0):
        hist.observe(value)
    assert hist.count == 4
    assert hist.sum == pytest.approx(55.55)
    counts, total = hist._read()
    assert counts == [1, 1, 1, 1]  # one per bucket incl. +Inf
    assert total == pytest.approx(55.55)


def test_histogram_timer_context_manager(registry):
    hist = registry.histogram("timed_seconds", "help")
    with hist.time():
        pass
    assert hist.count == 1
    assert hist.sum >= 0.0


def test_histogram_rejects_bad_buckets(registry):
    with pytest.raises(ValueError):
        registry.histogram("bad1_seconds", "help", buckets=())
    with pytest.raises(ValueError):
        registry.histogram("bad2_seconds", "help", buckets=(1.0, 0.5))
    with pytest.raises(ValueError):
        registry.histogram("bad3_seconds", "help", buckets=(1.0, 1.0))


def test_default_latency_buckets_are_sorted():
    assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
    assert DEFAULT_LATENCY_BUCKETS[0] <= 0.001  # sub-ms dispatch overhead visible


def test_labelled_children_are_independent(registry):
    counter = registry.counter("lbl_total", "help", ("status",))
    counter.labels("ok").inc()
    counter.labels("ok").inc()
    counter.labels(status="error").inc()
    assert counter.labels("ok").value == 2
    assert counter.labels("error").value == 1
    samples = dict(counter.samples())
    assert samples[("ok",)] == 2
    assert samples[("error",)] == 1


def test_label_misuse_raises(registry):
    counter = registry.counter("misuse_total", "help", ("a", "b"))
    with pytest.raises(ValueError):
        counter.inc()  # labelled metric used without labels
    with pytest.raises(ValueError):
        counter.labels("only-one")
    with pytest.raises(ValueError):
        counter.labels(a="x", wrong="y")
    unlabelled = registry.counter("plain_total", "help")
    with pytest.raises(ValueError):
        unlabelled.labels("x")


def test_invalid_names_rejected(registry):
    with pytest.raises(ValueError):
        registry.counter("0bad", "help")
    with pytest.raises(ValueError):
        registry.counter("ok_total", "help", ("bad-label",))


def test_registry_get_or_create_is_idempotent(registry):
    first = registry.counter("idem_total", "help")
    again = registry.counter("idem_total", "other help ignored")
    assert first is again
    with pytest.raises(ValueError):
        registry.gauge("idem_total", "help")  # type conflict
    with pytest.raises(ValueError):
        registry.counter("idem_total", "help", ("label",))  # label conflict
    hist = registry.histogram("idem_seconds", "help", buckets=(1.0, 2.0))
    assert registry.histogram("idem_seconds", "help", buckets=(1.0, 2.0)) is hist
    with pytest.raises(ValueError):
        registry.histogram("idem_seconds", "help", buckets=(1.0, 3.0))


def test_disabled_registry_mutators_are_noops():
    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("off_total", "help")
    gauge = registry.gauge("off_gauge", "help")
    hist = registry.histogram("off_seconds", "help")
    counter.inc()
    gauge.set(5)
    hist.observe(1.0)
    assert counter.value == 0
    assert gauge.value == 0
    assert hist.count == 0
    registry.enable()
    counter.inc()
    assert counter.value == 1


def test_registry_reset_zeroes_values_keeps_registrations(registry):
    counter = registry.counter("reset_total", "help", ("x",))
    counter.labels("a").inc(5)
    hist = registry.histogram("reset_seconds", "help")
    hist.observe(0.1)
    registry.reset()
    assert counter.labels("a").value == 0
    assert hist.count == 0
    assert "reset_total" in registry


def test_counter_thread_safety(registry):
    counter = registry.counter("race_total", "help")
    hist = registry.histogram("race_seconds", "help", buckets=(0.5,))

    def work():
        for _ in range(1000):
            counter.inc()
            hist.observe(0.1)

    threads = [threading.Thread(target=work) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counter.value == 8000
    assert hist.count == 8000


def test_process_wide_registry_is_shared():
    assert get_registry() is get_registry()
    assert isinstance(get_registry(), MetricsRegistry)


def test_library_instrumentation_registers_core_series():
    """Importing the instrumented modules must register the documented
    metric names on the process-wide registry."""
    import repro.core.trainer  # noqa: F401
    import repro.nn.training  # noqa: F401
    import repro.parallel.executor  # noqa: F401
    import repro.parallel.server  # noqa: F401
    import repro.parallel.serving  # noqa: F401

    registry = get_registry()
    for name in (
        "repro_training_epochs_total",
        "repro_training_epoch_loss",
        "repro_ensemble_networks_trained_total",
        "repro_parallel_tasks_total",
        "repro_serve_requests_total",
        "repro_serve_request_latency_seconds",
        "repro_serve_workers_alive",
        "repro_serve_worker_restarts_total",
        "repro_http_requests_total",
    ):
        assert name in registry, name
    assert isinstance(registry.get("repro_serve_request_latency_seconds"), Histogram)
    assert isinstance(registry.get("repro_serve_workers_alive"), Gauge)
    assert isinstance(registry.get("repro_training_epochs_total"), Counter)

"""The ``--log-file`` sink: JSON lines, size rotation, path switching."""

from __future__ import annotations

import json
import logging

import pytest

import repro.obs.events as events
from repro.obs.events import EVENTS_LOGGER_NAME, configure_logging, enable_events, log_event


@pytest.fixture()
def clean_logging():
    """Restore the unconfigured logging state after each test."""
    yield
    root = logging.getLogger("repro")
    if events._file_handler is not None:
        root.removeHandler(events._file_handler)
        events._file_handler.close()
        events._file_handler = None
        events._file_handler_path = None
    events._configured_fmt = None
    logging.getLogger(EVENTS_LOGGER_NAME).setLevel(logging.NOTSET)
    configure_logging(force=True)


def _read_events(path):
    return [json.loads(line) for line in path.read_text(encoding="utf-8").splitlines()]


def test_log_file_receives_json_lines(tmp_path, clean_logging):
    log_path = tmp_path / "logs" / "train.log"  # parent dir is created
    configure_logging(fmt="text", force=True, log_file=log_path)
    enable_events()
    log_event("train.member_journaled", member="m1", index=0)
    payloads = _read_events(log_path)
    assert payloads[-1]["event"] == "train.member_journaled"
    assert payloads[-1]["member"] == "m1"
    # The file sink is JSON regardless of the terminal format.
    assert all(isinstance(p, dict) for p in payloads)


def test_log_file_rotates_at_size_cap(tmp_path, clean_logging):
    log_path = tmp_path / "serve.log"
    configure_logging(
        fmt="json", force=True, log_file=log_path,
        log_file_max_bytes=2048, log_file_backups=2,
    )
    enable_events()
    for index in range(200):
        log_event("serve.request", index=index, padding="x" * 64)
    assert log_path.stat().st_size <= 4096  # current file stays near the cap
    backups = sorted(tmp_path.glob("serve.log.*"))
    assert [b.name for b in backups] == ["serve.log.1", "serve.log.2"]
    # Newest entries live in the live file, older ones in the backups.
    assert _read_events(log_path)[-1]["index"] == 199
    assert _read_events(backups[0])[0]["index"] < 199


def test_reconfiguring_with_new_path_moves_the_sink(tmp_path, clean_logging):
    first, second = tmp_path / "a.log", tmp_path / "b.log"
    configure_logging(fmt="json", force=True, log_file=first)
    enable_events()
    log_event("one")
    configure_logging(fmt="json", force=True, log_file=second)
    log_event("two")
    assert [p["event"] for p in _read_events(first)] == ["one"]
    assert [p["event"] for p in _read_events(second)] == ["two"]
    # Only one file handler is ever installed.
    root = logging.getLogger("repro")
    assert sum(isinstance(h, logging.handlers.RotatingFileHandler) for h in root.handlers) == 1


def test_log_file_installs_even_when_already_configured(tmp_path, clean_logging):
    """The idempotence guard must not swallow a later --log-file request
    (train configures logging lazily before the file path is known)."""
    configure_logging(fmt="text", force=True)  # the usual early call
    log_path = tmp_path / "late.log"
    configure_logging(log_file=log_path)  # no force: stream setup untouched
    enable_events()
    log_event("late.event")
    assert [p["event"] for p in _read_events(log_path)] == ["late.event"]

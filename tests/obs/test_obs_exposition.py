"""Prometheus text exposition: format conformance, escaping, determinism."""

import pytest

from repro.obs.exposition import CONTENT_TYPE, render_prometheus
from repro.obs.metrics import MetricsRegistry


@pytest.fixture()
def registry():
    return MetricsRegistry(enabled=True)


def test_counter_and_gauge_exposition(registry):
    counter = registry.counter("reqs_total", "Requests served.", ("status",))
    counter.labels("ok").inc(3)
    counter.labels("error").inc()
    registry.gauge("workers", "Alive workers.").set(2)
    text = render_prometheus(registry)
    lines = text.splitlines()
    assert "# HELP reqs_total Requests served." in lines
    assert "# TYPE reqs_total counter" in lines
    assert 'reqs_total{status="ok"} 3' in lines
    assert 'reqs_total{status="error"} 1' in lines
    assert "# TYPE workers gauge" in lines
    assert "workers 2" in lines
    assert text.endswith("\n")


def test_histogram_exposition_is_cumulative(registry):
    hist = registry.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        hist.observe(value)
    lines = render_prometheus(registry).splitlines()
    assert "# TYPE lat_seconds histogram" in lines
    assert 'lat_seconds_bucket{le="0.1"} 1' in lines
    assert 'lat_seconds_bucket{le="1"} 2' in lines
    assert 'lat_seconds_bucket{le="+Inf"} 3' in lines
    assert "lat_seconds_count 3" in lines
    assert any(line.startswith("lat_seconds_sum ") for line in lines)


def test_labelled_histogram_exposition(registry):
    hist = registry.histogram("h_seconds", "H.", ("path",), buckets=(1.0,))
    hist.labels("/predict").observe(0.5)
    lines = render_prometheus(registry).splitlines()
    assert 'h_seconds_bucket{path="/predict",le="1"} 1' in lines
    assert 'h_seconds_bucket{path="/predict",le="+Inf"} 1' in lines
    assert 'h_seconds_count{path="/predict"} 1' in lines


def test_label_value_escaping(registry):
    counter = registry.counter("esc_total", "Escapes.", ("msg",))
    counter.labels('he said "hi"\nback\\slash').inc()
    text = render_prometheus(registry)
    assert r'msg="he said \"hi\"\nback\\slash"' in text


def test_help_escaping_and_empty_registry(registry):
    assert render_prometheus(MetricsRegistry(enabled=True)) == ""
    registry.counter("multi_total", "line one\nline two")
    assert "# HELP multi_total line one\\nline two" in render_prometheus(registry)


def test_output_is_deterministically_ordered(registry):
    registry.counter("z_total", "z")
    registry.counter("a_total", "a")
    counter = registry.counter("m_total", "m", ("k",))
    counter.labels("b").inc()
    counter.labels("a").inc()
    first = render_prometheus(registry)
    second = render_prometheus(registry)
    assert first == second
    a_index = first.index("a_total")
    m_index = first.index("m_total")
    z_index = first.index("z_total")
    assert a_index < m_index < z_index
    assert first.index('m_total{k="a"}') < first.index('m_total{k="b"}')


def test_content_type_is_prometheus_text():
    assert CONTENT_TYPE.startswith("text/plain")
    assert "version=0.0.4" in CONTENT_TYPE

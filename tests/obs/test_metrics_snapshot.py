"""Registry snapshot / merge: how worker metrics travel to the parent."""

from __future__ import annotations

import pickle

from repro.obs.metrics import MetricsRegistry


def _worker_registry():
    registry = MetricsRegistry(enabled=True)
    registry.counter("jobs_total", "Jobs.", ()).inc(3)
    registry.counter("errs_total", "Errors.", ("kind",)).labels("io").inc(2)
    registry.gauge("last_loss", "Loss.", ("model",)).labels("m1").set(0.5)
    registry.histogram("latency", "Latency.", (), buckets=(0.1, 1.0)).observe(0.05)
    registry.histogram("latency", "Latency.", (), buckets=(0.1, 1.0)).observe(2.0)
    return registry


def test_snapshot_is_plain_data_and_picklable():
    snapshot = _worker_registry().snapshot()
    assert pickle.loads(pickle.dumps(snapshot)) == snapshot
    assert snapshot["jobs_total"]["samples"] == [[[], 3.0]]
    assert snapshot["latency"]["buckets"] == [0.1, 1.0]
    ((_, (counts, total)),) = [tuple(s) for s in snapshot["latency"]["samples"]]
    assert counts == [1, 0, 1] and total == 2.05


def test_merge_accumulates_counters_and_histograms():
    parent = MetricsRegistry(enabled=True)
    parent.counter("jobs_total", "Jobs.", ()).inc(10)
    parent.histogram("latency", "Latency.", (), buckets=(0.1, 1.0)).observe(0.5)
    parent.merge_snapshot(_worker_registry().snapshot())
    parent.merge_snapshot(_worker_registry().snapshot())

    assert parent.get("jobs_total").value == 16
    assert parent.get("errs_total").labels("io").value == 4
    histogram = parent.get("latency")
    assert histogram.count == 5 and histogram.sum == 0.5 + 2 * 2.05


def test_merge_sets_gauges_last_writer_wins():
    parent = MetricsRegistry(enabled=True)
    parent.gauge("last_loss", "Loss.", ("model",)).labels("m1").set(9.0)
    parent.merge_snapshot(_worker_registry().snapshot())
    assert parent.get("last_loss").labels("m1").value == 0.5


def test_merge_registers_unknown_metrics_on_the_fly():
    parent = MetricsRegistry(enabled=True)
    parent.merge_snapshot(_worker_registry().snapshot())
    assert "jobs_total" in parent and "latency" in parent


def test_untouched_gauges_do_not_clobber_parent():
    """A worker that *registered* a gauge but never wrote it must not reset
    the parent's value to 0 on merge (the resume-restored gauge regression)."""
    worker = MetricsRegistry(enabled=True)
    worker.gauge("restored", "Restored.", ())  # registered, never set
    worker.gauge("batches", "Batches.", ("worker",)).labels("7")  # child, never set

    parent = MetricsRegistry(enabled=True)
    parent.gauge("restored", "Restored.", ()).set(5)
    snapshot = worker.snapshot()
    assert snapshot["restored"]["samples"] == []
    assert snapshot["batches"]["samples"] == []
    parent.merge_snapshot(snapshot)
    assert parent.get("restored").value == 5

    # An explicit set(0) IS information and does travel.
    worker.gauge("restored", "Restored.", ()).set(0)
    parent.merge_snapshot(worker.snapshot())
    assert parent.get("restored").value == 0


def test_merge_skips_process_gauges():
    worker = MetricsRegistry(enabled=True)
    worker.gauge("repro_process_rss_bytes", "RSS.", ()).set(123.0)
    worker.counter("repro_process_like_counter_total", "Kept.", ()).inc()
    parent = MetricsRegistry(enabled=True)
    parent.merge_snapshot(worker.snapshot())
    assert "repro_process_rss_bytes" not in parent
    assert parent.get("repro_process_like_counter_total").value == 1


def test_snapshot_reset_snapshot_ships_deltas_once():
    """The worker protocol — snapshot then reset after every task — never
    double-counts work across consecutive merges."""
    worker = _worker_registry()
    parent = MetricsRegistry(enabled=True)
    parent.merge_snapshot(worker.snapshot())
    worker.reset()
    parent.merge_snapshot(worker.snapshot())  # idle delta: nothing new
    assert parent.get("jobs_total").value == 3
    assert parent.get("latency").count == 2
    worker.counter("jobs_total", "Jobs.", ()).inc()
    parent.merge_snapshot(worker.snapshot())
    worker.reset()
    assert parent.get("jobs_total").value == 4

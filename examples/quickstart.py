"""Quickstart: declare, train, save, and serve a MotherNets ensemble.

Since the unified API, a whole experiment is a single declarative
:class:`~repro.api.ExperimentSpec` — data set, member architectures, training
approach (resolved by name through the trainer registry), hyper-parameters —
executed by :func:`~repro.api.run_experiment`:

1. describe the experiment as plain data (it could equally live in a JSON
   file and run via ``python -m repro train``),
2. execute it (cluster -> train MotherNets -> hatch -> bag-train),
3. save the trained ensemble as a portable artifact directory,
4. serve predictions from the artifact with :class:`~repro.api.EnsemblePredictor`,
5. compare against the full-data baseline — selected by registry name only.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.api import EnsemblePredictor, run_experiment, save_ensemble_run
from repro.core import FullDataTrainer  # direct trainer API, still supported
from repro.data import train_validation_split
from repro.evaluation import evaluate_ensemble, format_error_rates, format_time_breakdown
from repro.nn import TrainingConfig


def main() -> None:
    # ------------------------------------------------- declarative experiment
    experiment = {
        "name": "quickstart",
        "dataset": {
            "name": "tabular",
            "num_classes": 8,
            "num_features": 32,
            "train_samples": 1024,
            "test_samples": 512,
            "class_separation": 1.6,
            "noise_std": 1.3,
            "seed": 7,
        },
        # Eight MLPs with diverse depths and widths, from the architecture zoo.
        "members": {
            "family": "mlp",
            "count": 8,
            "input_features": 32,
            "num_classes": 8,
            "base_width": 48,
            "base_depth": 2,
            "seed": 3,
            "use_batchnorm": True,
        },
        "approach": "mothernets",  # resolved through the trainer registry
        "trainer": {"tau": 0.4},
        "training": {
            "max_epochs": 30,
            "batch_size": 64,
            "learning_rate": 0.05,
            "momentum": 0.9,
            "convergence_patience": 3,
            "convergence_tolerance": 1e-3,
        },
        "seed": 0,
        "super_learner": {"validation_fraction": 0.15, "seed": 0},
    }

    print("Training with MotherNets (train once, hatch, bag-train)...")
    result = run_experiment(experiment)
    dataset = result.dataset

    for member in result.ensemble.members:
        print(f"  {member.name:24s} {member.parameter_count:>8,d} parameters ({member.source})")

    # --------------------------------------------------- save -> load -> serve
    with tempfile.TemporaryDirectory() as tmp:
        artifact = Path(tmp) / "quickstart-ensemble"
        save_ensemble_run(result.run, artifact)
        print(f"\nSaved ensemble artifact to {artifact}")

        predictor = EnsemblePredictor.load(artifact, method="average")
        labels = predictor.predict(dataset.x_test[:5])
        print(f"Served predictions for 5 samples: {labels.tolist()}")

    # ------------------------------------- baseline via the direct trainer API
    # The pre-registry entry points keep working unchanged:
    print("\nTraining the full-data baseline (every member from scratch)...")
    config = TrainingConfig(**experiment["training"])
    full_data_run = FullDataTrainer(config).train(
        result.spec.member_specs(), dataset, seed=0
    )
    # Fit the baseline's Super Learner on the same split run_experiment used,
    # so the SL rows of both tables are comparable.
    _, _, x_val, y_val = train_validation_split(
        dataset.x_train, dataset.y_train, validation_fraction=0.15, seed=0
    )
    full_data_run.ensemble.fit_super_learner(x_val, y_val, seed=0)

    # ------------------------------------------------------------- evaluation
    for run in (result.run, full_data_run):
        results = evaluate_ensemble(run.ensemble, dataset.x_test, dataset.y_test)
        print(f"\n=== {run.approach} ===")
        print(format_error_rates(results, title="test error rate (%)"))
        print(format_time_breakdown(run.training_time_breakdown()))

    speedup = full_data_run.total_training_seconds / result.run.total_training_seconds
    print(f"\nMotherNets trained the ensemble {speedup:.1f}x faster than full-data training.")


if __name__ == "__main__":
    main()

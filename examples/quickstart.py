"""Quickstart: train a small ensemble of diverse MLPs with MotherNets.

This walks through the full MotherNets workflow of the paper on a synthetic
tabular task small enough to run in a few seconds on a laptop CPU:

1. define an ensemble of diverse architectures,
2. construct the MotherNet that captures their shared structure,
3. train the MotherNet once on the full data set,
4. hatch every ensemble member (function-preserving, instantaneous),
5. fine-tune every member on its own bagged sample,
6. compare accuracy and training time against the full-data baseline.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.arch import count_parameters, mlp_family
from repro.core import (
    FullDataTrainer,
    MotherNetsTrainer,
    construct_mothernet,
)
from repro.data import synthetic_tabular_classification, train_validation_split
from repro.evaluation import evaluate_ensemble, format_error_rates, format_time_breakdown
from repro.nn import TrainingConfig


def main() -> None:
    # ------------------------------------------------------------------ data
    dataset = synthetic_tabular_classification(
        num_classes=8,
        num_features=32,
        train_samples=1024,
        test_samples=512,
        class_separation=1.6,
        noise_std=1.3,
        seed=7,
    )
    x_train, y_train, x_val, y_val = train_validation_split(
        dataset.x_train, dataset.y_train, validation_fraction=0.15, seed=0
    )

    # -------------------------------------------------------------- ensemble
    # Eight MLPs with diverse depths and widths.
    members = mlp_family(
        8, input_features=32, num_classes=8, base_width=48, base_depth=2, seed=3,
        use_batchnorm=True,
    )
    print("Ensemble members:")
    for member in members:
        print(f"  {member.describe():60s} {count_parameters(member):>8,d} parameters")

    mothernet = construct_mothernet(members)
    print(f"\nMotherNet: {mothernet.describe()}  ({count_parameters(mothernet):,d} parameters)")

    # -------------------------------------------------------------- training
    config = TrainingConfig(
        max_epochs=30,
        batch_size=64,
        learning_rate=0.05,
        momentum=0.9,
        convergence_patience=3,
        convergence_tolerance=1e-3,
    )

    print("\nTraining with MotherNets (train once, hatch, bag-train)...")
    mothernets_run = MotherNetsTrainer(config, tau=0.4).train(members, dataset, seed=0)

    print("Training the full-data baseline (every member from scratch)...")
    full_data_run = FullDataTrainer(config).train(members, dataset, seed=0)

    # ------------------------------------------------------------ evaluation
    for run in (mothernets_run, full_data_run):
        run.ensemble.fit_super_learner(x_val, y_val)
        results = evaluate_ensemble(run.ensemble, dataset.x_test, dataset.y_test)
        print(f"\n=== {run.approach} ===")
        print(format_error_rates(results, title="test error rate (%)"))
        print(format_time_breakdown(run.training_time_breakdown()))

    speedup = full_data_run.total_training_seconds / mothernets_run.total_training_seconds
    print(f"\nMotherNets trained the ensemble {speedup:.1f}x faster than full-data training.")


if __name__ == "__main__":
    main()

"""Using MotherNets with your own architectures.

Shows the lower-level public API that the ensemble trainers are built from:

* declaring custom convolutional architectures with ``ArchitectureSpec``
  (the paper's ``<filter_size>:<filter_number>`` notation),
* constructing and inspecting the MotherNet,
* inspecting the hatching plan (the explicit sequence of function-preserving
  transformations),
* hatching models by hand and verifying function preservation numerically,
* projecting training cost to paper scale with the analytical cost model.

Run with:  python examples/custom_architectures.py
"""

from __future__ import annotations

import numpy as np

from repro.arch import ArchitectureSpec, count_parameters
from repro.core import (
    AnalyticalCostModel,
    construct_mothernet,
    hatch,
    plan_hatching,
    verify_function_preservation,
)
from repro.evaluation import format_table
from repro.nn import Model

INPUT_SHAPE = (3, 16, 16)


def build_custom_ensemble() -> list:
    """Three hand-written convolutional architectures for the same task."""
    narrow = ArchitectureSpec.convolutional(
        "narrow",
        INPUT_SHAPE,
        blocks=[["3:16", "3:16"], ["3:32", "3:32"], ["3:64"]],
        num_classes=10,
    )
    wide = ArchitectureSpec.convolutional(
        "wide",
        INPUT_SHAPE,
        blocks=[["3:24", "3:24"], ["3:48", "3:48"], ["3:96", "3:96"]],
        num_classes=10,
    )
    big_filters = ArchitectureSpec.convolutional(
        "big-filters",
        INPUT_SHAPE,
        blocks=[["5:16", "3:20"], ["5:32", "3:32"], ["5:64", "1:64"]],
        num_classes=10,
    )
    return [narrow, wide, big_filters]


def main() -> None:
    members = build_custom_ensemble()
    print(format_table(
        ["architecture", "description", "parameters"],
        [[m.name, m.describe(), count_parameters(m)] for m in members],
        title="Custom ensemble",
    ))

    # ------------------------------------------------------------ MotherNet
    mothernet = construct_mothernet(members, name="custom-mothernet")
    print(f"\nMotherNet: {mothernet.describe()}")
    print(f"MotherNet parameters: {count_parameters(mothernet):,d} "
          f"(smallest member: {min(count_parameters(m) for m in members):,d})")

    # --------------------------------------------------------- hatching plan
    for member in members:
        plan = plan_hatching(mothernet, member)
        print(f"\nHatching plan for {member.name} "
              f"({plan.num_steps} steps, {plan.new_parameter_count():,d} new parameters):")
        for step in plan.steps:
            print(f"  - {step.describe()}")

    # --------------------------------------------- hatch and verify by hand
    parent = Model.from_spec(mothernet, seed=0)
    print("\nVerifying function preservation of hatching (untrained MotherNet):")
    for member in members:
        child = hatch(parent, member, seed=1)
        deviation = verify_function_preservation(parent, child, num_samples=8, atol=1e-7)
        print(f"  {member.name:12s} max |f_child(x) - f_mothernet(x)| = {deviation:.2e}")

    # -------------------------------------------------- cost-model projection
    # Project the training cost of a growing ensemble at paper scale: full
    # CIFAR-sized data (50k images), 60 epochs from scratch, 6 epochs of
    # fine-tuning for hatched members.
    cost = AnalyticalCostModel(seconds_per_unit=2e-10)
    ensemble_sizes = [5, 25, 50, 100]
    rows = []
    for size in ensemble_sizes:
        specs = [members[i % len(members)].with_name(f"member-{i}") for i in range(size)]
        full_data = cost.ensemble_training_seconds(specs, epochs_per_member=60, samples=50_000)
        mothernets = cost.ensemble_training_seconds(
            specs, epochs_per_member=6, samples=50_000,
            mothernet_specs=[mothernet], mothernet_epochs=60,
        )
        rows.append([size, full_data / 3600, mothernets / 3600, full_data / mothernets])
    print()
    print(format_table(
        ["ensemble size", "full-data (h)", "MotherNets (h)", "speedup"],
        rows,
        title="Projected training cost at paper scale (analytical cost model)",
    ))
    print("\nThe speedup grows with the ensemble size because the full-data cost of every\n"
          "additional member is replaced by a short fine-tuning run from the hatched warm start.")


if __name__ == "__main__":
    main()

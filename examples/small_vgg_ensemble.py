"""The paper's "small ensemble" scenario (Figure 5) at laptop scale.

Trains the five VGGNet variants of Table 1 (scaled down so a numpy CNN can
train them on a CPU) on a CIFAR-10-like synthetic data set with all three
approaches — full-data, bagging, and MotherNets — and reports the test error
under the paper's four inference methods plus the per-network training-time
breakdown.

Run with:  python examples/small_vgg_ensemble.py
(Expect a few minutes of CPU time; reduce WIDTH_SCALE / EPOCHS to go faster.)
"""

from __future__ import annotations

from repro.arch import count_parameters, small_vgg_ensemble
from repro.core import (
    BaggingTrainer,
    FullDataTrainer,
    MotherNetsTrainer,
    construct_mothernet,
)
from repro.data import cifar10_like, train_validation_split
from repro.evaluation import (
    evaluate_ensemble,
    format_error_rates,
    format_time_breakdown,
)
from repro.nn import TrainingConfig

# Scale knobs: the structure is exactly Table 1, the widths and the data set
# are scaled down for the numpy substrate.
WIDTH_SCALE = 0.05
IMAGE_SHAPE = (3, 16, 16)
TRAIN_SAMPLES = 1024
TEST_SAMPLES = 512
EPOCHS = 8


def main() -> None:
    dataset = cifar10_like(
        train_samples=TRAIN_SAMPLES, test_samples=TEST_SAMPLES, image_shape=IMAGE_SHAPE, seed=1
    )
    x_train, y_train, x_val, y_val = train_validation_split(
        dataset.x_train, dataset.y_train, validation_fraction=0.15, seed=0
    )

    members = small_vgg_ensemble(
        num_classes=dataset.num_classes, input_shape=dataset.input_shape, width_scale=WIDTH_SCALE
    )
    print("Table-1 ensemble (scaled):")
    for member in members:
        print(f"  {member.name:6s} {count_parameters(member):>10,d} parameters")
    mothernet = construct_mothernet(members)
    print(f"MotherNet: {count_parameters(mothernet):,d} parameters\n")

    config = TrainingConfig(
        max_epochs=EPOCHS,
        batch_size=128,
        learning_rate=0.05,
        momentum=0.9,
        convergence_patience=2,
        convergence_tolerance=2e-3,
    )

    runs = {}
    for name, trainer in (
        ("MotherNets", MotherNetsTrainer(config, tau=0.5)),
        ("full-data", FullDataTrainer(config)),
        ("bagging", BaggingTrainer(config)),
    ):
        print(f"Training with {name} ...")
        runs[name] = trainer.train(members, dataset, seed=0)

    print("\n================= results (compare with Figure 5) =================")
    for name, run in runs.items():
        run.ensemble.fit_super_learner(x_val, y_val)
        results = evaluate_ensemble(run.ensemble, dataset.x_test, dataset.y_test)
        print(f"\n--- {name} ---")
        print(format_error_rates(results))
        print(format_time_breakdown(run.training_time_breakdown()))

    mn = runs["MotherNets"].total_training_seconds
    print("\nSpeedups: "
          f"{runs['full-data'].total_training_seconds / mn:.2f}x vs full-data, "
          f"{runs['bagging'].total_training_seconds / mn:.2f}x vs bagging "
          "(the paper reports 2.5x and 1.8x at full scale).")


if __name__ == "__main__":
    main()

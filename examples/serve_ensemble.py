"""Serve predictions from a saved ensemble artifact.

This is the deployment half of the train -> save -> serve workflow: a small
convolutional ensemble is trained and persisted once (skipped if the artifact
already exists), then an :class:`~repro.api.EnsemblePredictor` loads it and
answers warm, batched prediction requests — the same objects the
``python -m repro`` CLI drives:

    python -m repro train   --config experiment.json --output artifact/
    python -m repro predict --artifact artifact/ --input batch.npy
    python -m repro inspect --artifact artifact/

For concurrent traffic the same artifact also serves through the
multi-process pool (``repro.api.PoolPredictor``) and its HTTP front:

    python -m repro serve --artifact artifact/ --workers 4 --port 8765

Run with:  python examples/serve_ensemble.py [artifact_dir]
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.api import EnsemblePredictor, run_experiment, save_ensemble_run
from repro.data import cifar10_like

ARTIFACT = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("artifacts/serve-demo")

EXPERIMENT = {
    "name": "serve-demo",
    "dataset": {
        "name": "cifar10",
        "train_samples": 512,
        "test_samples": 128,
        "image_shape": [3, 8, 8],
        "seed": 0,
    },
    # The five VGG variants of Table 1, scaled down for CPU training.
    "members": {
        "family": "small_vgg",
        "num_classes": 10,
        "input_shape": [3, 8, 8],
        "width_scale": 0.0625,
    },
    "approach": "mothernets",
    "trainer": {"tau": 0.5},
    "training": {"max_epochs": 3, "batch_size": 64, "learning_rate": 0.05},
    "seed": 0,
}


def main() -> None:
    # ------------------------------------------------------------- train once
    if not (ARTIFACT / "manifest.json").exists():
        print(f"No artifact at {ARTIFACT}; training the ensemble (one-off)...")
        result = run_experiment(EXPERIMENT)
        save_ensemble_run(result.run, ARTIFACT)
        print(f"Saved artifact ({result.run.total_training_seconds:.1f}s of training).\n")

    # --------------------------------------------------------- load and serve
    predictor = EnsemblePredictor.load(ARTIFACT, method="average")
    print("Loaded predictor:")
    print(json.dumps(predictor.info(), indent=2, sort_keys=True))

    # Simulate request traffic: repeated batches against the warm predictor.
    dataset = cifar10_like(train_samples=10, test_samples=128, image_shape=(3, 8, 8), seed=0)
    batch = dataset.x_test[:32]

    start = time.perf_counter()
    requests = 20
    for _ in range(requests):
        labels = predictor.predict(batch)
    elapsed = time.perf_counter() - start
    per_request = 1000.0 * elapsed / requests
    throughput = requests * batch.shape[0] / elapsed

    print(f"\nServed {requests} batches of {batch.shape[0]} images.")
    print(f"  latency:    {per_request:.2f} ms/batch")
    print(f"  throughput: {throughput:,.0f} images/s")
    print(f"  last labels: {labels[:10].tolist()} ...")

    # The multi-process pool answers the same requests bitwise-identically
    # from N worker processes (useful once clients are concurrent):
    from repro.api import PoolPredictor

    with PoolPredictor(ARTIFACT, workers=2) as pool:
        pool_labels = pool.predict(batch)
    assert (pool_labels == labels).all()
    print("  PoolPredictor(workers=2) served the batch bitwise-identically.")


if __name__ == "__main__":
    main()

"""Clustered MotherNets for an ensemble with a large size spread (§2.3 / Figure 9).

The 25-member ResNet ensemble of the paper mixes networks from ResNet-18 to
ResNet-152 — far too different in size for a single MotherNet to share a
meaningful fraction of parameters with every member.  This example

1. builds the 25-member ResNet variant family,
2. sweeps the clustering parameter τ and shows how the number of clusters and
   the guaranteed shared-parameter fraction trade off,
3. clusters at the paper's τ = 0.5 and trains one (scaled-down) cluster
   end-to-end with MotherNets, verifying that hatching preserved the
   MotherNet's function for every member.

Run with:  python examples/resnet_clustered_ensemble.py
"""

from __future__ import annotations

import numpy as np

from repro.arch import count_parameters, resnet_variant_family
from repro.core import (
    MotherNetsTrainer,
    cluster_ensemble,
    clustering_summary,
    construct_mothernet,
)
from repro.data import cifar10_like
from repro.evaluation import format_table
from repro.nn import Model, TrainingConfig

IMAGE_SHAPE = (3, 8, 8)
WIDTH_SCALE = 0.05


def main() -> None:
    # ---------------------------------------------------------- full family
    family_full = resnet_variant_family(width_scale=1.0)
    print(f"ResNet ensemble: {len(family_full)} members, "
          f"{min(count_parameters(m) for m in family_full):,d} to "
          f"{max(count_parameters(m) for m in family_full):,d} parameters\n")

    # -------------------------------------------------------------- τ sweep
    rows = []
    for tau in (0.1, 0.3, 0.5, 0.7, 0.9):
        clusters = cluster_ensemble(family_full, tau=tau)
        rows.append(
            [
                tau,
                len(clusters),
                min(cluster.min_shared_fraction() for cluster in clusters),
            ]
        )
    print(format_table(
        ["tau", "clusters", "min shared fraction"], rows,
        title="Clustering trade-off (paper: tau=0.5 gives 3 clusters grouped by depth)",
    ))

    clusters = cluster_ensemble(family_full, tau=0.5)
    print("\nClusters at tau = 0.5:")
    for entry in clustering_summary(clusters):
        members = ", ".join(entry["members"][:4]) + (" ..." if entry["size"] > 4 else "")
        print(f"  cluster {entry['cluster_id']}: {entry['size']} members "
              f"(MotherNet {entry['mothernet_parameters']:,d} params) -> {members}")

    # ------------------------------------------- train one cluster, scaled
    dataset = cifar10_like(train_samples=512, test_samples=256, image_shape=IMAGE_SHAPE, seed=2)
    family_small = resnet_variant_family(
        width_scale=WIDTH_SCALE, input_shape=IMAGE_SHAPE, depths=(18, 34)
    )
    cluster_members = family_small[:6]
    mothernet = construct_mothernet(cluster_members)
    print(f"\nTraining a scaled-down cluster of {len(cluster_members)} ResNets "
          f"(MotherNet: {count_parameters(mothernet):,d} parameters) ...")

    config = TrainingConfig(
        max_epochs=4, batch_size=128, learning_rate=0.05, momentum=0.9, convergence_patience=2
    )
    run = MotherNetsTrainer(config, tau=0.5).train(cluster_members, dataset, seed=0)

    # Verify the warm start: every hatched member starts from its MotherNet's function.
    x_probe = dataset.x_test[:8]
    for cluster in run.clusters:
        parent = run.mothernet_models[cluster.cluster_id]
        parent_logits = parent.predict_logits(x_probe)
        print(f"  cluster {cluster.cluster_id}: MotherNet trained for "
              f"{run.mothernet_results[cluster.cluster_id].epochs_run} epochs")

    evaluation = run.ensemble.evaluate(dataset.x_test, dataset.y_test, methods=("average", "vote", "oracle"))
    print("\nEnsemble test error (%):", {k: round(v, 2) for k, v in evaluation.items()})
    print("Total training time: "
          f"{run.total_training_seconds:.1f}s "
          f"({run.ledger.seconds_by_phase()['mothernet']:.1f}s MotherNet phase, "
          f"{run.ledger.seconds_by_phase()['member']:.1f}s member phase)")
    epochs = [result.epochs_run for result in run.member_results.values()]
    print(f"Hatched members converged in {np.mean(epochs):.1f} epochs on average "
          f"(budget was {config.max_epochs}).")


if __name__ == "__main__":
    main()
